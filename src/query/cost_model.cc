// Copyright (c) SkyBench-NG contributors.
#include "query/cost_model.h"

#include <algorithm>
#include <cmath>

#include "core/algorithm_registry.h"

namespace sky {
namespace {

/// The model's runtime estimate, in the registry's relative-ns units:
///
///   d_factor = cmp_dim_growth^(d - 4)          pruning decay past d=4
///   work     = per_point * n * d               linear passes (L1, sort)
///            + per_cmp * d_factor * n * m * d  dominance-test volume
///            + per_sky2 * m^2 * d              D&C merge phases
///   cost     = startup + startup_thread * t
///            + (1 - pf) * work + pf * work / t t = 1 for sequential
///
/// n is the post-constraint row estimate and m the skyline estimate at
/// that n (times band_k for k-skybands: every band level re-filters).
double Cost(const AlgorithmDescriptor& desc, double n_eff, int d,
            double m_eff, int threads) {
  const double t = desc.parallel ? std::max(1, threads) : 1;
  const double d_factor =
      std::pow(desc.cost.cmp_dim_growth, std::max(0, d - 4));
  const double work =
      desc.cost.per_point_ns * n_eff * d +
      desc.cost.per_cmp_ns * d_factor * n_eff * m_eff * d +
      desc.cost.per_sky2_ns * m_eff * m_eff * d;
  const double pf = desc.cost.parallel_fraction;
  return desc.cost.startup_ns + desc.cost.startup_thread_ns * t +
         (1.0 - pf) * work + pf * work / t;
}

/// Per-coordinate surcharges of the zonemap_direct comparison
/// (SelectionContext::zonemap_direct). A constrained spec normally pays a
/// full-dataset view materialization (copy + box test per row) before any
/// algorithm runs; the zonemap direct path replaces that with AABB
/// pruning plus a row scan over the boxes that survive it. The model
/// charges materialization to every ordinary candidate and a cheaper
/// whole-dataset scan bound to zonemap — pessimistic for zonemap (it
/// skips disjoint blocks without touching rows), so the pick only flips
/// where the win is structural.
constexpr double kViewMaterializeNs = 1.2;
constexpr double kZonemapBoxScanNs = 0.25;

struct Effective {
  double n = 1.0;
  double m = 1.0;
};

Effective EffectiveSizes(const StatsSketch& sketch,
                         const SelectionContext& ctx) {
  Effective e;
  e.n = std::max(1.0, static_cast<double>(sketch.n) *
                          std::clamp(ctx.selectivity, 0.0, 1.0));
  e.m = sketch.EstimateSkylineAt(e.n);
  if (ctx.band_k > 1) {
    e.m = std::min(e.n, e.m * static_cast<double>(ctx.band_k));
  }
  return e;
}

}  // namespace

double CostLearner::Scale(Algorithm algo) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return cells_[static_cast<size_t>(algo)].scale;
}

void CostLearner::Record(Algorithm algo, double predicted_cost,
                         double measured_seconds) {
  const double measured_ns = measured_seconds * 1e9;
  const double ratio = std::clamp(
      measured_ns / std::max(predicted_cost, 1.0), 0.01, 100.0);
  const std::lock_guard<std::mutex> lock(mu_);
  Cell& cell = cells_[static_cast<size_t>(algo)];
  cell.scale = cell.observations == 0
                   ? ratio
                   : (1.0 - kBlend) * cell.scale + kBlend * ratio;
  ++cell.observations;
}

uint64_t CostLearner::Observations(Algorithm algo) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return cells_[static_cast<size_t>(algo)].observations;
}

void CostLearner::Reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  cells_.fill(Cell{});
}

double EstimateAlgorithmCost(Algorithm algorithm, const StatsSketch& sketch,
                             const SelectionContext& ctx) {
  const Effective e = EffectiveSizes(sketch, ctx);
  return Cost(GetAlgorithmDescriptor(algorithm), e.n, sketch.d, e.m,
              ctx.threads);
}

AlgorithmChoice ChooseAlgorithm(const StatsSketch& sketch,
                                const SelectionContext& ctx) {
  const Effective e = EffectiveSizes(sketch, ctx);
  AlgorithmChoice choice;
  choice.est_rows = e.n;
  choice.est_skyline = e.m;
  bool first = true;
  for (const AlgorithmDescriptor& desc : AlgorithmTable()) {
    if (!desc.auto_candidate) continue;
    // Zonemap competes only where the engine would run it directly on raw
    // rows against a constraint box (see SelectionContext::zonemap_direct).
    if (desc.algorithm == Algorithm::kZonemap && !ctx.zonemap_direct) {
      continue;
    }
    // k-skybands run ComputeSkyband, which reuses Q-Flow's block flow
    // whatever Options.algorithm says — restrict to capable algorithms
    // so the reported choice matches what actually executes.
    if (ctx.band_k > 1 && !desc.skyband) continue;
    // A progressive caller must get an algorithm that streams.
    if (ctx.progressive && !desc.progressive) continue;
    double cost = Cost(desc, e.n, sketch.d, e.m, ctx.threads);
    if (ctx.zonemap_direct) {
      // Direct-path comparison: ordinary candidates first pay the
      // full-dataset view materialization the zonemap path skips.
      const double full = static_cast<double>(sketch.n) * sketch.d;
      cost += desc.algorithm == Algorithm::kZonemap
                  ? kZonemapBoxScanNs * full
                  : kViewMaterializeNs * full;
    }
    if (ctx.learner != nullptr) cost *= ctx.learner->Scale(desc.algorithm);
    if (first || cost < choice.est_cost) {
      choice.algorithm = desc.algorithm;
      choice.est_cost = cost;
      first = false;
    }
  }
  return choice;
}

double EstimateConstraintSelectivity(
    const StatsSketch& sketch,
    const std::vector<DimConstraint>& constraints) {
  double sel = 1.0;
  for (const DimConstraint& c : constraints) {
    sel *= sketch.EstimateIntervalSelectivity(c.dim, c.lo, c.hi);
  }
  sel = std::clamp(sel, 0.0, 1.0);
  // Incremental mutations freeze the quantile sample (data/sketch.h), so
  // the estimate drifts as rows churn. Damp toward the conservative 1.0
  // ("everything survives the constraint") in proportion to the mutated
  // fraction: a stale sketch then over-budgets rather than under-plans,
  // and a rebuilt sketch (StaleFraction 0) keeps today's exact behavior.
  const double stale = sketch.StaleFraction();
  return sel + (1.0 - sel) * stale;
}

Algorithm ChooseAlgorithmForDataset(const Dataset& data,
                                    const Options& opts) {
  SelectionContext ctx;
  ctx.threads = opts.ResolvedThreads();
  ctx.progressive = opts.progressive != nullptr;
  return ChooseAlgorithm(ComputeSketch(data, opts.seed), ctx).algorithm;
}

}  // namespace sky
