// Copyright (c) SkyBench-NG contributors.
#include "query/shard_map.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <numeric>
#include <stdexcept>

#include "data/partition.h"
#include "data/working_set.h"
#include "dominance/dominance.h"
#include "parallel/thread_pool.h"

namespace sky {

uint64_t NextShardEpoch() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

const char* ShardPolicyName(ShardPolicy policy) {
  switch (policy) {
    case ShardPolicy::kRoundRobin:
      return "rr";
    case ShardPolicy::kMedianPivot:
      return "median";
  }
  return "?";
}

ShardPolicy ParseShardPolicy(const std::string& name) {
  if (name == "rr" || name == "roundrobin") return ShardPolicy::kRoundRobin;
  if (name == "median") return ShardPolicy::kMedianPivot;
  throw std::runtime_error("unknown shard policy '" + name +
                           "' (want rr|median)");
}

namespace {

/// Row order for kMedianPivot: stable-sort original rows by their
/// partition mask relative to the median pivot, so equal-mask points (the
/// same orthant of the pivot) end up contiguous and each cut of the order
/// covers a small sub-box of the space.
std::vector<PointId> MaskOrder(const Dataset& data, uint64_t seed,
                               Executor* executor) {
  ThreadPool pool(executor, ThreadPool::DefaultThreads());
  WorkingSet ws = WorkingSet::FromDataset(data, pool);
  const DomCtx dom(ws.dims, ws.stride, /*use_simd=*/true);
  const std::vector<Value> pivot =
      SelectPivot(ws, PivotPolicy::kMedian, pool, seed);
  AssignMasks(ws, pivot.data(), dom, pool);
  std::vector<PointId> order(ws.count);
  std::iota(order.begin(), order.end(), PointId{0});
  std::stable_sort(order.begin(), order.end(), [&](PointId a, PointId b) {
    return ws.masks[a] < ws.masks[b];
  });
  return order;
}

}  // namespace

ShardMap ShardMap::Build(const Dataset& data, size_t shards,
                         ShardPolicy policy, uint64_t seed,
                         Executor* executor) {
  ShardMap map;
  map.policy_ = policy;
  map.dims_ = data.dims();
  map.total_count_ = data.count();
  const size_t k = std::min(std::max<size_t>(shards, 1),
                            std::max<size_t>(data.count(), 1));

  // Membership lists per shard, in original row-id order per shard.
  std::vector<std::vector<PointId>> members(k);
  if (policy == ShardPolicy::kRoundRobin || k == 1 || data.count() == 0) {
    for (size_t i = 0; i < data.count(); ++i) {
      members[i % k].push_back(static_cast<PointId>(i));
    }
  } else {
    const std::vector<PointId> order = MaskOrder(data, seed, executor);
    for (size_t pos = 0; pos < order.size(); ++pos) {
      // Equal-size cuts of the mask order: shard s covers positions
      // [s*n/k, (s+1)*n/k).
      members[pos * k / order.size()].push_back(order[pos]);
    }
  }

  const int dims = data.dims();
  const size_t row_bytes = sizeof(Value) * static_cast<size_t>(data.stride());
  map.shards_.reserve(k);
  for (size_t s = 0; s < k; ++s) {
    Shard shard;
    shard.row_ids = std::move(members[s]);
    auto rows = std::make_shared<Dataset>(dims, shard.row_ids.size());
    shard.box_lo.assign(static_cast<size_t>(dims),
                        std::numeric_limits<Value>::infinity());
    shard.box_hi.assign(static_cast<size_t>(dims),
                        -std::numeric_limits<Value>::infinity());
    for (size_t w = 0; w < shard.row_ids.size(); ++w) {
      const Value* src = data.Row(shard.row_ids[w]);
      std::memcpy(rows->MutableRow(w), src, row_bytes);
      for (int j = 0; j < dims; ++j) {
        // NaN fails both comparisons and stays out of the box.
        if (src[j] < shard.box_lo[static_cast<size_t>(j)]) {
          shard.box_lo[static_cast<size_t>(j)] = src[j];
        }
        if (src[j] > shard.box_hi[static_cast<size_t>(j)]) {
          shard.box_hi[static_cast<size_t>(j)] = src[j];
        }
      }
    }
    // Sketch each shard while its rows are hot: O(sample), so building
    // K shards stays linear in n overall.
    shard.sketch = ComputeSketch(*rows, seed + s);
    shard.epoch = NextShardEpoch();
    shard.data = std::move(rows);
    map.shards_.push_back(std::make_shared<const Shard>(std::move(shard)));
  }
  return map;
}

void ShardMap::ReplaceShard(size_t i, std::shared_ptr<const Shard> shard) {
  SKY_CHECK(i < shards_.size() && shard != nullptr &&
            shard->data != nullptr);
  shards_[i] = std::move(shard);
  size_t total = 0;
  for (const auto& s : shards_) total += s->row_ids.size();
  total_count_ = total;
}

size_t ShardMap::RouteInsert(const Value* row) const {
  SKY_CHECK(!shards_.empty());
  const auto least_loaded = [&](size_t a, size_t b) {
    return shards_[b]->row_ids.size() < shards_[a]->row_ids.size() ? b : a;
  };
  if (policy_ == ShardPolicy::kRoundRobin) {
    size_t best = 0;
    for (size_t s = 1; s < shards_.size(); ++s) best = least_loaded(best, s);
    return best;
  }
  // Median-pivot: minimize range-normalized box expansion so shard boxes
  // stay tight and constraint pruning keeps firing after mutations.
  size_t best = 0;
  double best_score = std::numeric_limits<double>::infinity();
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    double score = 0.0;
    for (int j = 0; j < dims_; ++j) {
      const Value v = row[j];
      const Value lo = shard.box_lo[static_cast<size_t>(j)];
      const Value hi = shard.box_hi[static_cast<size_t>(j)];
      // NaN coordinates and empty (all-NaN) boxes expand nothing.
      if (std::isnan(v) || lo > hi) continue;
      const double denom = hi > lo ? static_cast<double>(hi) - lo : 1.0;
      if (v < lo) {
        score += (static_cast<double>(lo) - v) / denom;
      } else if (v > hi) {
        score += (static_cast<double>(v) - hi) / denom;
      }
    }
    if (score < best_score) {
      best_score = score;
      best = s;
    } else if (score == best_score) {
      best = least_loaded(best, s);
    }
  }
  return best;
}

}  // namespace sky
