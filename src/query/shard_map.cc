// Copyright (c) SkyBench-NG contributors.
#include "query/shard_map.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "data/partition.h"
#include "data/working_set.h"
#include "dominance/dominance.h"
#include "parallel/thread_pool.h"

namespace sky {

const char* ShardPolicyName(ShardPolicy policy) {
  switch (policy) {
    case ShardPolicy::kRoundRobin:
      return "rr";
    case ShardPolicy::kMedianPivot:
      return "median";
  }
  return "?";
}

ShardPolicy ParseShardPolicy(const std::string& name) {
  if (name == "rr" || name == "roundrobin") return ShardPolicy::kRoundRobin;
  if (name == "median") return ShardPolicy::kMedianPivot;
  throw std::runtime_error("unknown shard policy '" + name +
                           "' (want rr|median)");
}

namespace {

/// Row order for kMedianPivot: stable-sort original rows by their
/// partition mask relative to the median pivot, so equal-mask points (the
/// same orthant of the pivot) end up contiguous and each cut of the order
/// covers a small sub-box of the space.
std::vector<PointId> MaskOrder(const Dataset& data, uint64_t seed) {
  ThreadPool pool(ThreadPool::DefaultThreads());
  WorkingSet ws = WorkingSet::FromDataset(data, pool);
  const DomCtx dom(ws.dims, ws.stride, /*use_simd=*/true);
  const std::vector<Value> pivot =
      SelectPivot(ws, PivotPolicy::kMedian, pool, seed);
  AssignMasks(ws, pivot.data(), dom, pool);
  std::vector<PointId> order(ws.count);
  std::iota(order.begin(), order.end(), PointId{0});
  std::stable_sort(order.begin(), order.end(), [&](PointId a, PointId b) {
    return ws.masks[a] < ws.masks[b];
  });
  return order;
}

}  // namespace

ShardMap ShardMap::Build(const Dataset& data, size_t shards,
                         ShardPolicy policy, uint64_t seed) {
  ShardMap map;
  map.policy_ = policy;
  map.dims_ = data.dims();
  map.total_count_ = data.count();
  const size_t k = std::min(std::max<size_t>(shards, 1),
                            std::max<size_t>(data.count(), 1));

  // Membership lists per shard, in original row-id order per shard.
  std::vector<std::vector<PointId>> members(k);
  if (policy == ShardPolicy::kRoundRobin || k == 1 || data.count() == 0) {
    for (size_t i = 0; i < data.count(); ++i) {
      members[i % k].push_back(static_cast<PointId>(i));
    }
  } else {
    const std::vector<PointId> order = MaskOrder(data, seed);
    for (size_t pos = 0; pos < order.size(); ++pos) {
      // Equal-size cuts of the mask order: shard s covers positions
      // [s*n/k, (s+1)*n/k).
      members[pos * k / order.size()].push_back(order[pos]);
    }
  }

  const int dims = data.dims();
  const size_t row_bytes = sizeof(Value) * static_cast<size_t>(data.stride());
  map.shards_.resize(k);
  for (size_t s = 0; s < k; ++s) {
    Shard& shard = map.shards_[s];
    shard.row_ids = std::move(members[s]);
    shard.data = Dataset(dims, shard.row_ids.size());
    shard.box_lo.assign(static_cast<size_t>(dims),
                        std::numeric_limits<Value>::infinity());
    shard.box_hi.assign(static_cast<size_t>(dims),
                        -std::numeric_limits<Value>::infinity());
    for (size_t w = 0; w < shard.row_ids.size(); ++w) {
      const Value* src = data.Row(shard.row_ids[w]);
      std::memcpy(shard.data.MutableRow(w), src, row_bytes);
      for (int j = 0; j < dims; ++j) {
        // NaN fails both comparisons and stays out of the box.
        if (src[j] < shard.box_lo[static_cast<size_t>(j)]) {
          shard.box_lo[static_cast<size_t>(j)] = src[j];
        }
        if (src[j] > shard.box_hi[static_cast<size_t>(j)]) {
          shard.box_hi[static_cast<size_t>(j)] = src[j];
        }
      }
    }
    // Sketch each shard while its rows are hot: O(sample), so building
    // K shards stays linear in n overall.
    shard.sketch = ComputeSketch(shard.data, seed + s);
  }
  return map;
}

}  // namespace sky
