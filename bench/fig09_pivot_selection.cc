// Copyright (c) SkyBench-NG contributors.
// Reproduces paper Fig. 9: effect of the pivot-selection policy on Hybrid
// across block sizes α, per distribution.
//
// Paper shape to reproduce: on correlated data all policies are equal; on
// independent/anticorrelated data Median wins consistently with Balanced
// a clear second; trends w.r.t. α match Fig. 8 for every policy.
#include <cstdio>

#include "bench_util.h"

namespace sky {
namespace {

void Run(const BenchConfig& cfg) {
  const size_t n = cfg.n_override ? cfg.n_override
                                  : (cfg.full ? 1'000'000 : 20'000);
  const int d = cfg.d_override ? cfg.d_override : (cfg.full ? 12 : 8);
  const int t = cfg.max_threads > 0 ? cfg.max_threads : (cfg.full ? 16 : 4);
  const PivotPolicy policies[] = {PivotPolicy::kBalanced,
                                  PivotPolicy::kVolume,
                                  PivotPolicy::kManhattan,
                                  PivotPolicy::kRandom, PivotPolicy::kMedian};

  for (const Distribution dist : AllDistributions()) {
    std::printf(
        "== Fig. 9: Hybrid pivot policies vs alpha — %s (n=%zu d=%d t=%d), "
        "seconds ==\n",
        DistributionName(dist), n, d, t);
    WorkloadSpec spec{dist, n, d, cfg.seed};
    const Dataset& data = WorkloadCache::Instance().Get(spec);
    Table table({"alpha", "balanced", "volume", "manhattan", "random",
                 "median"});
    for (size_t alpha = 16; alpha <= 8192; alpha *= 8) {
      std::vector<std::string> row{Table::Int(alpha)};
      for (const PivotPolicy p : policies) {
        const RunStats st =
            TimeAlgo(data, Algorithm::kHybrid, t, cfg, alpha, p);
        row.push_back(Table::Num(st.total_seconds));
      }
      table.AddRow(std::move(row));
    }
    Emit(table, cfg);
    WorkloadCache::Instance().Clear();
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper Fig. 9): policies indistinguishable on corr; "
      "Median best and Balanced second on indep/anti (balanced partition "
      "sizes maximise region-wise skipping).\n");
}

}  // namespace
}  // namespace sky

int main(int argc, char** argv) {
  sky::Run(sky::BenchConfig::Parse(argc, argv));
  return 0;
}
