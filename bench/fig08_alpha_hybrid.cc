// Copyright (c) SkyBench-NG contributors.
// Reproduces paper Fig. 8: Hybrid execution time decomposed into Init /
// Pre-filter / Pivot / Phase I / Phase II / Compress / Other as a
// function of α.
//
// Paper shape to reproduce: α matters less than for Q-Flow (≤2x), optimum
// near 2^10; on correlated data pre-filtering is half the (tiny) cost and
// Phases I/II are nearly empty; on indep/anti the parallel phases combine
// for up to ~95% of the time.
#include <cstdio>

#include "bench_util.h"

namespace sky {
namespace {

void Run(const BenchConfig& cfg) {
  const size_t n = cfg.n_override ? cfg.n_override
                                  : (cfg.full ? 1'000'000 : 20'000);
  const int d = cfg.d_override ? cfg.d_override : (cfg.full ? 12 : 8);
  const int t = cfg.max_threads > 0 ? cfg.max_threads : (cfg.full ? 16 : 4);

  for (const Distribution dist : AllDistributions()) {
    std::printf(
        "== Fig. 8: Hybrid phases vs alpha — %s (n=%zu d=%d t=%d) ==\n",
        DistributionName(dist), n, d, t);
    WorkloadSpec spec{dist, n, d, cfg.seed};
    const Dataset& data = WorkloadCache::Instance().Get(spec);
    Table table({"alpha", "init", "prefilter", "pivot", "phase1", "phase2",
                 "compress", "other", "total", "par%"});
    for (int log_alpha = 7; log_alpha <= 16; log_alpha += 3) {
      const size_t alpha = size_t{1} << log_alpha;
      const RunStats st = TimeAlgo(data, Algorithm::kHybrid, t, cfg, alpha);
      const double par = st.total_seconds > 0
                             ? 100.0 * (st.phase1_seconds + st.phase2_seconds) /
                                   st.total_seconds
                             : 0.0;
      table.AddRow({"2^" + std::to_string(log_alpha),
                    Table::Num(st.init_seconds),
                    Table::Num(st.prefilter_seconds),
                    Table::Num(st.pivot_seconds),
                    Table::Num(st.phase1_seconds),
                    Table::Num(st.phase2_seconds),
                    Table::Num(st.compress_seconds),
                    Table::Num(st.other_seconds),
                    Table::Num(st.total_seconds), Table::Num(par, 1)});
    }
    Emit(table, cfg);
    WorkloadCache::Instance().Clear();
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper Fig. 8): flat in alpha (<=2x), best near "
      "2^10; correlated: prefilter ~half of a tiny total; indep/anti: "
      "Phase I dominates and parallel share (par%%) approaches ~95%%.\n");
}

}  // namespace
}  // namespace sky

int main(int argc, char** argv) {
  sky::Run(sky::BenchConfig::Parse(argc, argv));
  return 0;
}
