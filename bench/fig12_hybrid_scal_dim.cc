// Copyright (c) SkyBench-NG contributors.
// Reproduces paper Fig. 12: multi-threaded scalability of Hybrid versus
// PBSkyTree with respect to dimensionality.
//
// Paper shape to reproduce: both scale linearly in t; Hybrid pulls away
// from PBSkyTree as d grows (by an order of magnitude at d=16) because
// shrinking partitions ruin PBSkyTree's throughput while Hybrid keeps
// constant-size α-blocks; on easy correlated data Hybrid's fixed
// initialization overhead leaves it behind.
#include <cstdio>

#include "bench_util.h"

namespace sky {
namespace {

void Run(const BenchConfig& cfg) {
  const size_t n = cfg.n_override ? cfg.n_override
                                  : (cfg.full ? 1'000'000 : 20'000);
  const int max_t = cfg.max_threads > 0 ? cfg.max_threads
                                        : (cfg.full ? 16 : 4);
  const std::vector<int> ds = cfg.full
                                  ? std::vector<int>{6, 8, 10, 12, 14, 16}
                                  : std::vector<int>{4, 6, 8, 10, 12};

  for (const Distribution dist : AllDistributions()) {
    std::printf(
        "== Fig. 12: Hybrid vs PBSkyTree w.r.t. d — %s (n=%zu), seconds "
        "==\n",
        DistributionName(dist), n);
    std::vector<std::string> headers{"d"};
    for (int t = 1; t <= max_t; t *= 2) {
      headers.push_back("HY(t=" + std::to_string(t) + ")");
      headers.push_back("PB(t=" + std::to_string(t) + ")");
    }
    Table table(headers);
    for (const int d : ds) {
      WorkloadSpec spec{dist, n, d, cfg.seed};
      const Dataset& data = WorkloadCache::Instance().Get(spec);
      std::vector<std::string> row{Table::Int(static_cast<uint64_t>(d))};
      for (int t = 1; t <= max_t; t *= 2) {
        row.push_back(
            Table::Num(TimeAlgo(data, Algorithm::kHybrid, t, cfg)
                           .total_seconds));
        row.push_back(
            Table::Num(TimeAlgo(data, Algorithm::kPBSkyTree, t, cfg)
                           .total_seconds));
      }
      table.AddRow(std::move(row));
      WorkloadCache::Instance().Clear();
    }
    Emit(table, cfg);
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper Fig. 12): Hybrid's advantage over PBSkyTree "
      "grows with d on indep/anti (order of magnitude by d=16); Hybrid "
      "trails on easy correlated workloads.\n");
}

}  // namespace
}  // namespace sky

int main(int argc, char** argv) {
  sky::Run(sky::BenchConfig::Parse(argc, argv));
  return 0;
}
