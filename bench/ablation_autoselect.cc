// Copyright (c) SkyBench-NG contributors.
// Auto-selection ablation: how close does the cost model's pick come to
// an oracle that always runs the best fixed algorithm? For every cell of
// a (distribution x n x d x shard count) grid we time --algo=auto
// through the engine and every fixed auto-candidate (BSkyTree, PSkyline,
// Q-Flow, Hybrid) on the identical registration, then report per-cell
// regret (auto / best-fixed) plus the aggregate totals. Expected shape:
// auto tracks the per-cell winner — sequential picks on small cells,
// parallel picks at scale when threads are available — landing within
// ~10% of the best fixed choice overall and far from the worst.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/algorithm_registry.h"
#include "parallel/thread_pool.h"
#include "query/engine.h"

namespace sky {
namespace {

double MedianSeconds(SkylineEngine& engine, const QuerySpec& spec,
                     const Options& opts, int repeats, QueryResult* last) {
  std::vector<double> times;
  for (int rep = 0; rep < repeats; ++rep) {
    engine.ClearCache();  // time computation, not cache replay
    *last = engine.Execute("ds", spec, opts);
    times.push_back(last->stats.total_seconds);
  }
  return Median(std::move(times));
}

std::vector<Algorithm> AutoCandidates() {
  std::vector<Algorithm> algos;
  for (const AlgorithmDescriptor& desc : AlgorithmTable()) {
    if (desc.auto_candidate) algos.push_back(desc.algorithm);
  }
  return algos;
}

void Run(const BenchConfig& cfg) {
  const size_t n_hi = cfg.n_override ? cfg.n_override
                                     : (cfg.full ? 1'000'000 : 64'000);
  const std::vector<size_t> ns = {std::max<size_t>(n_hi / 16, 256),
                                  std::max<size_t>(n_hi / 4, 512), n_hi};
  const std::vector<int> ds =
      cfg.d_override ? std::vector<int>{cfg.d_override}
                     : std::vector<int>{4, 8};
  // The thread budget must match the hardware: handing the cost model
  // more threads than exist makes it pick parallel algorithms that
  // cannot actually speed up.
  const int t =
      cfg.max_threads > 0 ? cfg.max_threads : ThreadPool::DefaultThreads();
  const std::vector<Algorithm> candidates = AutoCandidates();

  std::printf(
      "== Ablation: cost-model auto-selection vs fixed algorithms "
      "(t=%d) ==\n",
      t);
  Options opts;
  opts.threads = t;

  Table table({"distribution", "n", "d", "K", "auto (s)", "picked",
               "best (s)", "best", "worst (s)", "worst", "regret"});
  double total_auto = 0.0, total_best = 0.0, total_worst = 0.0;
  double regret_log_sum = 0.0;
  size_t cells = 0;
  for (const Distribution dist : AllDistributions()) {
    for (const size_t n : ns) {
      for (const int d : ds) {
        WorkloadSpec wspec{dist, n, d, cfg.seed};
        const Dataset& data = WorkloadCache::Instance().Get(wspec);
        for (const size_t shards : {size_t{1}, size_t{4}}) {
          SkylineEngine::Config config;
          config.shards = shards;
          config.shard_policy = ShardPolicy::kMedianPivot;
          SkylineEngine engine(config);
          engine.RegisterDataset("ds", data.Clone());

          QueryResult r;
          Options auto_opts = opts;
          auto_opts.algorithm = Algorithm::kAuto;
          const double t_auto = MedianSeconds(engine, QuerySpec{}, auto_opts,
                                              cfg.repeats, &r);
          // Label the cell with the (first) shard's pick.
          const char* picked = r.shard_algorithms.empty()
                                   ? "?"
                                   : AlgorithmName(r.shard_algorithms[0]);

          double best = 0.0, worst = 0.0;
          Algorithm best_algo = candidates[0], worst_algo = candidates[0];
          bool first = true;
          for (const Algorithm algo : candidates) {
            Options fixed = opts;
            fixed.algorithm = algo;
            QueryResult rf;
            const double tf =
                MedianSeconds(engine, QuerySpec{}, fixed, cfg.repeats, &rf);
            if (first || tf < best) {
              best = tf;
              best_algo = algo;
            }
            if (first || tf > worst) {
              worst = tf;
              worst_algo = algo;
            }
            first = false;
          }

          const double regret = best > 0.0 ? t_auto / best : 1.0;
          total_auto += t_auto;
          total_best += best;
          total_worst += worst;
          regret_log_sum += std::log(std::max(regret, 1e-9));
          ++cells;
          table.AddRow({DistributionName(dist), std::to_string(n),
                        std::to_string(d), std::to_string(shards),
                        Table::Num(t_auto), picked, Table::Num(best),
                        AlgorithmName(best_algo), Table::Num(worst),
                        AlgorithmName(worst_algo), Table::Num(regret, 3)});
        }
        WorkloadCache::Instance().Clear();
      }
    }
  }
  Emit(table, cfg);
  std::printf(
      "\nTotals over %zu cells: auto=%.4fs best-fixed(oracle)=%.4fs "
      "worst-fixed=%.4fs\n",
      cells, total_auto, total_best, total_worst);
  std::printf(
      "Aggregate regret: auto/best=%.3f (target <= ~1.10), "
      "auto/worst=%.3f (must be < 1), per-cell geomean=%.3f\n",
      total_best > 0 ? total_auto / total_best : 1.0,
      total_worst > 0 ? total_auto / total_worst : 1.0,
      cells > 0 ? std::exp(regret_log_sum / static_cast<double>(cells)) : 1.0);
}

}  // namespace
}  // namespace sky

int main(int argc, char** argv) {
  sky::Run(sky::BenchConfig::Parse(argc, argv));
  return 0;
}
