// Copyright (c) SkyBench-NG contributors.
// Helpers shared by the figure/table benchmark binaries.
#ifndef SKY_BENCH_BENCH_UTIL_H_
#define SKY_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "bench_support/harness.h"
#include "bench_support/table.h"
#include "bench_support/workload.h"

namespace sky {

/// Time one algorithm on a workload; returns the median-run stats.
inline RunStats TimeAlgo(const Dataset& data, Algorithm algo, int threads,
                         const BenchConfig& cfg, size_t alpha = 0,
                         PivotPolicy pivot = PivotPolicy::kMedian) {
  Options o;
  o.algorithm = algo;
  o.threads = threads;
  o.alpha = alpha;
  o.pivot = pivot;
  return RunTimed(data, o, cfg.repeats, cfg.verify).stats;
}

/// The paper's five headline algorithms (Figs. 5 and 6) with the thread
/// counts they run at (sequential BSkyTree at t=1, the rest at t).
struct HeadlineAlgo {
  Algorithm algo;
  bool parallel;
};

inline std::vector<HeadlineAlgo> HeadlineAlgos() {
  return {{Algorithm::kBSkyTree, false},
          {Algorithm::kHybrid, true},
          {Algorithm::kPBSkyTree, true},
          {Algorithm::kQFlow, true},
          {Algorithm::kPSkyline, true}};
}

inline std::vector<Distribution> AllDistributions() {
  return {Distribution::kCorrelated, Distribution::kIndependent,
          Distribution::kAnticorrelated};
}

inline void Emit(const Table& table, const BenchConfig& cfg) {
  if (cfg.csv) {
    std::fputs(table.ToCsv().c_str(), stdout);
  } else {
    table.Print();
  }
}

}  // namespace sky

#endif  // SKY_BENCH_BENCH_UTIL_H_
