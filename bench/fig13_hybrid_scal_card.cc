// Copyright (c) SkyBench-NG contributors.
// Reproduces paper Fig. 13: multi-threaded scalability of Hybrid versus
// PBSkyTree with respect to cardinality.
//
// Paper shape to reproduce: run-times grow linearly in n for both; a few
// Hybrid threads (4-8) beat a fully-threaded PBSkyTree on
// independent/anticorrelated data; correlated stays sub-second and favors
// PBSkyTree (Hybrid inherits Q-Flow's O(n) initialization).
#include <cstdio>

#include "bench_util.h"

namespace sky {
namespace {

void Run(const BenchConfig& cfg) {
  const int d = cfg.d_override ? cfg.d_override : (cfg.full ? 12 : 8);
  const int max_t = cfg.max_threads > 0 ? cfg.max_threads
                                        : (cfg.full ? 16 : 4);
  const std::vector<size_t> ns =
      cfg.full ? std::vector<size_t>{500'000, 1'000'000, 2'000'000,
                                     4'000'000, 8'000'000}
               : std::vector<size_t>{12'500, 25'000, 50'000};

  for (const Distribution dist : AllDistributions()) {
    std::printf(
        "== Fig. 13: Hybrid vs PBSkyTree w.r.t. n — %s (d=%d), seconds "
        "==\n",
        DistributionName(dist), d);
    std::vector<std::string> headers{"n"};
    for (int t = 1; t <= max_t; t *= 2) {
      headers.push_back("HY(t=" + std::to_string(t) + ")");
      headers.push_back("PB(t=" + std::to_string(t) + ")");
    }
    Table table(headers);
    for (const size_t n : ns) {
      WorkloadSpec spec{dist, n, d, cfg.seed};
      const Dataset& data = WorkloadCache::Instance().Get(spec);
      std::vector<std::string> row{Table::Int(n)};
      for (int t = 1; t <= max_t; t *= 2) {
        row.push_back(
            Table::Num(TimeAlgo(data, Algorithm::kHybrid, t, cfg)
                           .total_seconds));
        row.push_back(
            Table::Num(TimeAlgo(data, Algorithm::kPBSkyTree, t, cfg)
                           .total_seconds));
      }
      table.AddRow(std::move(row));
      WorkloadCache::Instance().Clear();
    }
    Emit(table, cfg);
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper Fig. 13): linear growth in n; Hybrid ahead on "
      "indep/anti with even a few threads; correlated favors PBSkyTree.\n");
}

}  // namespace
}  // namespace sky

int main(int argc, char** argv) {
  sky::Run(sky::BenchConfig::Parse(argc, argv));
  return 0;
}
