// Copyright (c) SkyBench-NG contributors.
// Design-choice ablation (paper §VI-A1): Hybrid with and without the
// β-priority-queue pre-filter. The paper argues the pre-filter nearly
// solves correlated workloads by itself but is a fixed overhead that is
// "not amortized" on small inputs.
#include <cstdio>

#include "bench_util.h"

namespace sky {
namespace {

void Run(const BenchConfig& cfg) {
  const size_t n = cfg.n_override ? cfg.n_override
                                  : (cfg.full ? 1'000'000 : 50'000);
  const int d = cfg.d_override ? cfg.d_override : 8;
  const int t = cfg.max_threads > 0 ? cfg.max_threads : (cfg.full ? 16 : 4);

  std::printf("== Ablation: Hybrid pre-filter on/off (n=%zu, d=%d, t=%d) ==\n",
              n, d, t);
  Table table({"distribution", "off (s)", "on (s)", "removed", "removed %"});
  for (const Distribution dist : AllDistributions()) {
    WorkloadSpec spec{dist, n, d, cfg.seed};
    const Dataset& data = WorkloadCache::Instance().Get(spec);
    Options off;
    off.algorithm = Algorithm::kHybrid;
    off.threads = t;
    off.prefilter_beta = 0;
    Options on = off;
    on.prefilter_beta = 8;
    const RunStats so = RunTimed(data, off, cfg.repeats, cfg.verify).stats;
    const RunStats si = RunTimed(data, on, cfg.repeats, cfg.verify).stats;
    table.AddRow({DistributionName(dist), Table::Num(so.total_seconds),
                  Table::Num(si.total_seconds),
                  Table::Int(si.prefiltered_points),
                  Table::Num(100.0 * static_cast<double>(
                                         si.prefiltered_points) /
                                 static_cast<double>(n),
                             1)});
    WorkloadCache::Instance().Clear();
  }
  Emit(table, cfg);
  std::printf(
      "\nExpected shape: on correlated data the pre-filter removes the "
      "vast majority of points; on anticorrelated data it removes little "
      "and is near-neutral in cost.\n");
}

}  // namespace
}  // namespace sky

int main(int argc, char** argv) {
  sky::Run(sky::BenchConfig::Parse(argc, argv));
  return 0;
}
