// Copyright (c) SkyBench-NG contributors.
// Sharding ablation: what does the plan/execute/merge pipeline buy and
// cost? For each shard count K and policy we time two query shapes
// against one engine-registered dataset:
//   uncon — full skyline, every shard executes, M(S) merge overhead only
//   con   — a selective box on the last dimension; shards whose bounding
//           boxes miss it are pruned by the planner (pruning win)
// The pruned column reports how many of the K shards the constrained
// query skipped. Expected shape: "uncon" degrades mildly with K (merge
// overhead); "con" improves once the policy produces prunable shards
// (median-pivot keeps shards spatially tight; round-robin boxes all
// overlap, so it prunes nothing and shows the overhead floor).
#include <cstdio>

#include "bench_util.h"
#include "query/engine.h"
#include "query/planner.h"
#include "query/shard_map.h"

namespace sky {
namespace {

double MedianSeconds(SkylineEngine& engine, const QuerySpec& spec,
                     const Options& opts, int repeats, uint32_t* pruned) {
  std::vector<double> times;
  for (int rep = 0; rep < repeats; ++rep) {
    engine.ClearCache();  // time computation, not cache replay
    const QueryResult r = engine.Execute("ds", spec, opts);
    times.push_back(r.stats.total_seconds);
    *pruned = r.shards_pruned;
  }
  return Median(std::move(times));
}

void Run(const BenchConfig& cfg) {
  const size_t n = cfg.n_override ? cfg.n_override
                                  : (cfg.full ? 1'000'000 : 50'000);
  const int d = cfg.d_override ? cfg.d_override : 8;
  const int t = cfg.max_threads > 0 ? cfg.max_threads : (cfg.full ? 16 : 4);

  std::printf(
      "== Ablation: sharded plan/execute/merge, Hybrid (n=%zu, d=%d, "
      "t=%d) ==\n",
      n, d, t);
  Options opts;
  opts.algorithm = Algorithm::kHybrid;
  opts.threads = t;

  QuerySpec uncon;
  QuerySpec con;
  con.Constrain(d - 1, 0.0f, 0.25f);  // selective box on the last dim

  Table table({"distribution", "K", "policy", "uncon (s)", "con (s)",
               "pruned"});
  for (const Distribution dist : AllDistributions()) {
    WorkloadSpec wspec{dist, n, d, cfg.seed};
    const Dataset& data = WorkloadCache::Instance().Get(wspec);
    for (const size_t k : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
      for (const ShardPolicy policy :
           {ShardPolicy::kRoundRobin, ShardPolicy::kMedianPivot}) {
        if (k == 1 && policy != ShardPolicy::kRoundRobin) continue;
        SkylineEngine::Config config;
        config.shards = k;
        config.shard_policy = policy;
        SkylineEngine engine(config);
        engine.RegisterDataset("ds", data.Clone());
        uint32_t pruned = 0;
        const double tu =
            MedianSeconds(engine, uncon, opts, cfg.repeats, &pruned);
        const double tc =
            MedianSeconds(engine, con, opts, cfg.repeats, &pruned);
        table.AddRow({DistributionName(dist), std::to_string(k),
                      k == 1 ? "-" : ShardPolicyName(policy), Table::Num(tu),
                      Table::Num(tc),
                      std::to_string(pruned) + "/" + std::to_string(k)});
      }
    }
    WorkloadCache::Instance().Clear();
  }
  Emit(table, cfg);
  std::printf(
      "\nExpected shape: uncon pays a small M(S) merge cost that grows "
      "with K; con under the median policy prunes most shards and beats "
      "both K=1 and round-robin (whose overlapping boxes never prune).\n");
}

}  // namespace
}  // namespace sky

int main(int argc, char** argv) {
  sky::Run(sky::BenchConfig::Parse(argc, argv));
  return 0;
}
