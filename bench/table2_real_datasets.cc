// Copyright (c) SkyBench-NG contributors.
// Reproduces paper Table II: run-time and multi-threaded speedup on the
// real datasets. The originals are unavailable; synthetic stand-ins with
// Table I's cardinality/dimensionality/duplication structure are used
// (see DESIGN.md §4).
//
// Paper shape to reproduce: Hybrid is the best performer on all three
// datasets; parallel speedups are modest on the small NBA/House inputs
// and large on Weather; all parallel algorithms beat sequential BSkyTree
// on Weather.
#include <cstdio>

#include "bench_util.h"
#include "data/realistic.h"

namespace sky {
namespace {

struct StandIn {
  const char* name;
  Dataset data;
};

void Run(const BenchConfig& cfg) {
  const int t = cfg.max_threads > 0 ? cfg.max_threads : (cfg.full ? 16 : 4);
  // Laptop defaults scale the larger sets down; --full restores Table I;
  // an explicit --n overrides all three (smoke tests use a tiny n).
  const size_t n_nba =
      cfg.n_override ? cfg.n_override : (cfg.full ? 17'264 : 17'264);
  const size_t n_house =
      cfg.n_override ? cfg.n_override : (cfg.full ? 127'931 : 32'000);
  const size_t n_weather =
      cfg.n_override ? cfg.n_override : (cfg.full ? 566'268 : 50'000);
  std::vector<StandIn> sets;
  sets.push_back({"NBA-like", GenerateNbaLike(n_nba, cfg.seed)});
  sets.push_back({"House-like", GenerateHouseLike(n_house, cfg.seed)});
  sets.push_back({"Weather-like", GenerateWeatherLike(n_weather, cfg.seed)});

  const Algorithm algos[] = {Algorithm::kBSkyTree, Algorithm::kPBSkyTree,
                             Algorithm::kPSkyline, Algorithm::kQFlow,
                             Algorithm::kHybrid};

  for (const StandIn& s : sets) {
    std::printf("== Table II: %s (n=%zu, d=%d, t=%d) ==\n", s.name,
                s.data.count(), s.data.dims(), t);
    Table table({"algorithm", "msec (t)", "msec (t=1)", "speedup", "|sky|"});
    for (const Algorithm algo : algos) {
      const bool parallel = IsParallelAlgorithm(algo);
      const RunStats multi = TimeAlgo(s.data, algo, parallel ? t : 1, cfg);
      const RunStats single = parallel ? TimeAlgo(s.data, algo, 1, cfg)
                                       : multi;
      table.AddRow({AlgorithmName(algo),
                    Table::Num(multi.total_seconds * 1e3, 1),
                    Table::Num(single.total_seconds * 1e3, 1),
                    parallel ? Table::Num(single.total_seconds /
                                              multi.total_seconds,
                                          2) + "x"
                             : std::string("-"),
                    Table::Int(multi.skyline_size)});
    }
    Emit(table, cfg);
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper Table II): Hybrid best on every dataset; "
      "note that on a single-core host the t>1 'speedup' column shows "
      "oversubscription overhead instead of gain (see EXPERIMENTS.md).\n");
}

}  // namespace
}  // namespace sky

int main(int argc, char** argv) {
  sky::Run(sky::BenchConfig::Parse(argc, argv));
  return 0;
}
