// Copyright (c) SkyBench-NG contributors.
// Reproduces paper Table III: the parallelization overhead of PBSkyTree,
// measured as single-threaded PBSkyTree time relative to natively
// sequential BSkyTree, across cardinalities and distributions.
//
// Paper shape to reproduce: overhead ~1-2x on correlated, ~3-4x on
// independent, ~5-7x on anticorrelated data (points processed up to one
// batch "too early" cost extra dominance tests).
#include <cstdio>

#include "bench_util.h"

namespace sky {
namespace {

void Run(const BenchConfig& cfg) {
  const int d = cfg.d_override ? cfg.d_override : (cfg.full ? 12 : 8);
  const std::vector<size_t> ns =
      cfg.full ? std::vector<size_t>{500'000, 1'000'000, 2'000'000,
                                     4'000'000, 8'000'000}
               : std::vector<size_t>{12'500, 25'000, 50'000, 100'000};

  std::printf(
      "== Table III: PBSkyTree(t=1) time / BSkyTree time (d=%d) ==\n", d);
  std::vector<std::string> headers{"distribution"};
  for (const size_t n : ns) headers.push_back("n=" + Table::Int(n));
  Table table(headers);
  for (const Distribution dist : AllDistributions()) {
    std::vector<std::string> row{DistributionName(dist)};
    for (const size_t n : ns) {
      WorkloadSpec spec{dist, n, d, cfg.seed};
      const Dataset& data = WorkloadCache::Instance().Get(spec);
      const double seq =
          TimeAlgo(data, Algorithm::kBSkyTree, 1, cfg).total_seconds;
      const double par1 =
          TimeAlgo(data, Algorithm::kPBSkyTree, 1, cfg).total_seconds;
      row.push_back(Table::Num(par1 / seq, 2) + "x");
      WorkloadCache::Instance().Clear();
    }
    table.AddRow(std::move(row));
  }
  Emit(table, cfg);
  std::printf(
      "\nExpected shape (paper Table III): ratios ~1-2x corr, ~3-4x indep, "
      "~5-7x anti; the overhead is absorbed by 2-8 threads on multi-core "
      "hosts.\n");
}

}  // namespace
}  // namespace sky

int main(int argc, char** argv) {
  sky::Run(sky::BenchConfig::Parse(argc, argv));
  return 0;
}
