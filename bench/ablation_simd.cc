// Copyright (c) SkyBench-NG contributors.
// Reproduces the paper's §VII-A2 vectorization claim: AVX (8-wide)
// dominance tests speed up PSkyline / BSkyTree / Q-Flow / Hybrid by
// 1.75x / 1.32x / 2x / 1.25x under the default workload (independent,
// n=1M, d=12). This ablation runs every algorithm with scalar and SIMD
// kernels and reports the ratio.
#include <cstdio>

#include "bench_util.h"

namespace sky {
namespace {

void Run(const BenchConfig& cfg) {
  const size_t n = cfg.n_override ? cfg.n_override
                                  : (cfg.full ? 1'000'000 : 20'000);
  const int d = cfg.d_override ? cfg.d_override : 12;
  const int t = cfg.max_threads > 0 ? cfg.max_threads : (cfg.full ? 16 : 4);

  WorkloadSpec spec{Distribution::kIndependent, n, d, cfg.seed};
  const Dataset& data = WorkloadCache::Instance().Get(spec);

  std::printf(
      "== Ablation: vectorized dominance tests (indep, n=%zu, d=%d, t=%d) "
      "==\n",
      n, d, t);
  Table table({"algorithm", "scalar (s)", "AVX2 1v1 (s)", "AVX2 batch (s)",
               "simd speedup", "batch speedup", "paper speedup"});
  struct Row {
    Algorithm algo;
    bool has_batch;  // routes its window scans through the tile kernels
    const char* paper;
  };
  const Row rows[] = {{Algorithm::kPSkyline, false, "1.75x"},
                      {Algorithm::kBSkyTree, false, "1.32x"},
                      {Algorithm::kQFlow, true, "2.00x"},
                      {Algorithm::kHybrid, true, "1.25x"}};
  for (const Row& r : rows) {
    Options scalar;
    scalar.algorithm = r.algo;
    scalar.threads = IsParallelAlgorithm(r.algo) ? t : 1;
    scalar.use_simd = false;
    scalar.use_batch = false;
    Options simd = scalar;
    simd.use_simd = true;
    Options batched = simd;
    batched.use_batch = true;
    const double ts =
        RunTimed(data, scalar, cfg.repeats, cfg.verify).stats.total_seconds;
    const double tv =
        RunTimed(data, simd, cfg.repeats, cfg.verify).stats.total_seconds;
    const double tb =
        r.has_batch
            ? RunTimed(data, batched, cfg.repeats, cfg.verify)
                  .stats.total_seconds
            : tv;
    table.AddRow({AlgorithmName(r.algo), Table::Num(ts), Table::Num(tv),
                  r.has_batch ? Table::Num(tb) : "(=1v1)",
                  Table::Num(ts / tv, 2) + "x",
                  Table::Num(tv / tb, 2) + "x", r.paper});
  }
  Emit(table, cfg);
  std::printf(
      "\nExpected shape (paper §VII-A2): SIMD helps every algorithm; "
      "DT-bound algorithms (Q-Flow, PSkyline) gain the most, "
      "partition-pruned ones (Hybrid, BSkyTree) the least. The batch "
      "column shows the extra win from the SoA tile kernels (8 window "
      "points per compare) on the algorithms that use them.\n");
}

}  // namespace
}  // namespace sky

int main(int argc, char** argv) {
  sky::Run(sky::BenchConfig::Parse(argc, argv));
  return 0;
}
