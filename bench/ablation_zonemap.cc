// Copyright (c) SkyBench-NG contributors.
// Zonemap ablation: what does the block index buy, and where? Three views
// over the same workloads:
//   1. traversal accounting — per distribution, how many blocks the BBS
//      run visits vs prunes (min-corner dominance) vs skips (box-disjoint
//      AABB), for a full skyline and a 1% constraint box, plus the
//      one-time Z-order build cost the cached index amortises away;
//   2. engine serving — the constrained query through the cached index
//      (--algo=zonemap) against the materialize-view sequential-scan
//      baseline (SSkyline) and the strongest tree baseline (BSkyTree);
//   3. auto-selection — the cost model's pick for the constrained cell
//      with and without the zonemap_direct gate, showing the index only
//      becomes a candidate when the engine can actually serve it.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "core/zonemap_skyline.h"
#include "data/sketch.h"
#include "index/zonemap.h"
#include "query/cost_model.h"
#include "query/engine.h"

namespace sky {
namespace {

constexpr float kBoxLo = 0.10f;
constexpr float kBoxHi = 0.11f;  // ~1% selectivity on a uniform dimension

/// Steady-state engine serving: the result cache is off and every repeat
/// uses a distinct 1% box, so each Execute plans and computes while the
/// zonemap cache (when the algorithm uses it) stays warm.
double MedianEngineSeconds(const Dataset& data, Algorithm algo, int repeats) {
  SkylineEngine::Config config;
  config.result_cache_capacity = 0;
  SkylineEngine engine(config);
  engine.RegisterDataset("ds", data.Clone());
  Options opts;
  opts.algorithm = algo;
  opts.threads = 1;
  QuerySpec warm;
  warm.Constrain(0, 0.05f, 0.06f);
  engine.Execute("ds", warm, opts);  // pays the one-time index build
  std::vector<double> times;
  const int reps = std::max(repeats, 3);
  for (int rep = 0; rep < reps; ++rep) {
    QuerySpec q;
    const float lo = kBoxLo + 0.01f * static_cast<float>(rep);
    q.Constrain(0, lo, lo + (kBoxHi - kBoxLo));
    WallTimer t;
    engine.Execute("ds", q, opts);
    times.push_back(t.Seconds());
  }
  return Median(std::move(times));
}

void Run(const BenchConfig& cfg) {
  const size_t n =
      cfg.n_override ? cfg.n_override : (cfg.full ? 1'000'000 : 100'000);
  const int d = cfg.d_override ? cfg.d_override : 8;
  std::printf("== Ablation: zonemap block index (n=%zu, d=%d) ==\n", n, d);

  Options direct;
  direct.threads = 1;
  const std::vector<DimConstraint> box{{0, kBoxLo, kBoxHi}};

  Table accounting({"distribution", "build (s)", "shape", "time (s)",
                    "visited", "pruned", "skipped", "|sky|"});
  Table serving({"distribution", "zonemap (s)", "scan (s)", "bskytree (s)",
                 "vs scan"});
  for (const Distribution dist : AllDistributions()) {
    WorkloadSpec wspec{dist, n, d, cfg.seed};
    const Dataset& data = WorkloadCache::Instance().Get(wspec);
    const StatsSketch sketch = ComputeSketch(data);
    WallTimer build_timer;
    const ZoneMapIndex index = ZoneMapIndex::Build(data, 0, &sketch);
    const double build_s = build_timer.Seconds();
    struct Shape {
      const char* name;
      std::span<const DimConstraint> constraints;
    };
    for (const Shape& shape :
         {Shape{"uncon", {}}, Shape{"con", std::span(box)}}) {
      std::vector<double> times;
      ZonemapRunResult run;
      for (int rep = 0; rep < std::max(cfg.repeats, 3); ++rep) {
        WallTimer t;
        run = ZonemapSkylineRun(data, index, shape.constraints, direct);
        times.push_back(t.Seconds());
      }
      accounting.AddRow(
          {DistributionName(dist), Table::Num(build_s), shape.name,
           Table::Num(Median(std::move(times))),
           std::to_string(run.blocks_visited),
           std::to_string(run.blocks_pruned),
           std::to_string(run.blocks_box_skipped),
           std::to_string(run.skyline.size())});
    }

    const double zm = MedianEngineSeconds(data, Algorithm::kZonemap,
                                          cfg.repeats);
    const double scan = MedianEngineSeconds(data, Algorithm::kSSkyline,
                                            cfg.repeats);
    const double tree = MedianEngineSeconds(data, Algorithm::kBSkyTree,
                                            cfg.repeats);
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx", scan / zm);
    serving.AddRow({DistributionName(dist), Table::Num(zm), Table::Num(scan),
                    Table::Num(tree), speedup});

    // The cost model's view of this cell: zonemap only competes when the
    // query engine reports it can serve the box straight off the index.
    SelectionContext ctx;
    ctx.threads = 1;
    ctx.selectivity = 0.01;
    const Algorithm off = ChooseAlgorithm(sketch, ctx).algorithm;
    ctx.zonemap_direct = true;
    const Algorithm on = ChooseAlgorithm(sketch, ctx).algorithm;
    std::printf("auto pick (%s, 1%% box): gate off -> %s, gate on -> %s\n",
                DistributionName(dist), AlgorithmName(off),
                AlgorithmName(on));
    WorkloadCache::Instance().Clear();
  }
  std::printf("\n-- BBS traversal accounting --\n");
  Emit(accounting, cfg);
  std::printf("\n-- engine serving, 1%% box (steady state, cached index) "
              "--\n");
  Emit(serving, cfg);
  std::printf(
      "\nExpected shape: unconstrained runs prune most blocks by min-corner "
      "dominance on correlated/independent data and degrade to visiting "
      "them on anticorrelated data; the 1%% box flips the win to AABB "
      "skips, where the clustered index beats the scan baseline by the "
      "build cost's amortised margin.\n");
}

}  // namespace
}  // namespace sky

int main(int argc, char** argv) {
  sky::Run(sky::BenchConfig::Parse(argc, argv));
  return 0;
}
