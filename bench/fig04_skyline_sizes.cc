// Copyright (c) SkyBench-NG contributors.
// Reproduces paper Fig. 4: skyline cardinality of the synthetic
// distributions as a function of dataset cardinality n (left panel) and
// dimensionality d (right panel).
//
// Paper shape to reproduce: for every n and d, corr << indep << anti; the
// skyline grows with both n and d, approaching n itself for
// anticorrelated high-dimensional data.
#include <cstdio>

#include "bench_support/harness.h"
#include "bench_support/table.h"

namespace sky {
namespace {

uint64_t SkylineSize(Distribution dist, size_t n, int d, uint64_t seed) {
  WorkloadSpec spec{dist, n, d, seed};
  const Dataset& data = WorkloadCache::Instance().Get(spec);
  Options o;
  o.algorithm = Algorithm::kHybrid;
  o.threads = 0;
  return ComputeSkyline(data, o).stats.skyline_size;
}

void Run(const BenchConfig& cfg) {
  const std::vector<size_t> ns =
      cfg.full ? std::vector<size_t>{500'000, 1'000'000, 2'000'000,
                                     4'000'000, 8'000'000}
               : std::vector<size_t>{25'000, 50'000, 100'000, 200'000};
  const std::vector<int> ds = cfg.full ? std::vector<int>{6, 8, 10, 12, 14, 16}
                                       : std::vector<int>{2, 4, 6, 8, 10, 12};
  const size_t fixed_n = cfg.n_override ? cfg.n_override
                                        : (cfg.full ? 1'000'000 : 50'000);
  const int fixed_d = cfg.d_override ? cfg.d_override : (cfg.full ? 12 : 8);

  std::printf("== Fig. 4 (left): |skyline| vs cardinality (d=%d) ==\n",
              fixed_d);
  Table left({"n", "corr", "indep", "anti"});
  for (const size_t n : ns) {
    left.AddRow(
        {Table::Int(n),
         Table::Int(SkylineSize(Distribution::kCorrelated, n, fixed_d,
                                cfg.seed)),
         Table::Int(SkylineSize(Distribution::kIndependent, n, fixed_d,
                                cfg.seed)),
         Table::Int(SkylineSize(Distribution::kAnticorrelated, n, fixed_d,
                                cfg.seed))});
    WorkloadCache::Instance().Clear();
  }
  cfg.csv ? (void)std::fputs(left.ToCsv().c_str(), stdout) : left.Print();

  std::printf("\n== Fig. 4 (right): |skyline| vs dimensionality (n=%zu) ==\n",
              fixed_n);
  Table right({"d", "corr", "indep", "anti"});
  for (const int d : ds) {
    right.AddRow(
        {Table::Int(static_cast<uint64_t>(d)),
         Table::Int(SkylineSize(Distribution::kCorrelated, fixed_n, d,
                                cfg.seed)),
         Table::Int(SkylineSize(Distribution::kIndependent, fixed_n, d,
                                cfg.seed)),
         Table::Int(SkylineSize(Distribution::kAnticorrelated, fixed_n, d,
                                cfg.seed))});
    WorkloadCache::Instance().Clear();
  }
  cfg.csv ? (void)std::fputs(right.ToCsv().c_str(), stdout) : right.Print();
  std::printf(
      "\nExpected shape (paper Fig. 4): corr << indep << anti at every "
      "point; growth in both n and d.\n");
}

}  // namespace
}  // namespace sky

int main(int argc, char** argv) {
  sky::Run(sky::BenchConfig::Parse(argc, argv));
  return 0;
}
