// Copyright (c) SkyBench-NG contributors.
// Reproduces paper Fig. 10: multi-threaded scalability of Q-Flow versus
// PSkyline with respect to dimensionality (n fixed; t swept).
//
// Paper shape to reproduce: both algorithms scale roughly linearly in t;
// Q-Flow is up to ~2x faster than PSkyline on anticorrelated data at all
// d, and on the other distributions from moderate d upward — except
// low-d correlated data, where PSkyline's zero-initialization wins.
#include <cstdio>

#include "bench_util.h"

namespace sky {
namespace {

void Run(const BenchConfig& cfg) {
  const size_t n = cfg.n_override ? cfg.n_override
                                  : (cfg.full ? 1'000'000 : 20'000);
  const int max_t = cfg.max_threads > 0 ? cfg.max_threads
                                        : (cfg.full ? 16 : 4);
  const std::vector<int> ds = cfg.full
                                  ? std::vector<int>{6, 8, 10, 12, 14, 16}
                                  : std::vector<int>{4, 6, 8, 10};

  for (const Distribution dist : AllDistributions()) {
    std::printf(
        "== Fig. 10: Q-Flow vs PSkyline w.r.t. d — %s (n=%zu), seconds ==\n",
        DistributionName(dist), n);
    std::vector<std::string> headers{"d"};
    for (int t = 1; t <= max_t; t *= 2) {
      headers.push_back("QF(t=" + std::to_string(t) + ")");
      headers.push_back("PS(t=" + std::to_string(t) + ")");
    }
    Table table(headers);
    for (const int d : ds) {
      WorkloadSpec spec{dist, n, d, cfg.seed};
      const Dataset& data = WorkloadCache::Instance().Get(spec);
      std::vector<std::string> row{Table::Int(static_cast<uint64_t>(d))};
      for (int t = 1; t <= max_t; t *= 2) {
        row.push_back(
            Table::Num(TimeAlgo(data, Algorithm::kQFlow, t, cfg)
                           .total_seconds));
        row.push_back(
            Table::Num(TimeAlgo(data, Algorithm::kPSkyline, t, cfg)
                           .total_seconds));
      }
      table.AddRow(std::move(row));
      WorkloadCache::Instance().Clear();
    }
    Emit(table, cfg);
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper Fig. 10): Q-Flow ahead of PSkyline on anti at "
      "every d and elsewhere from moderate d; near-linear thread scaling "
      "on multi-core hosts (oversubscribed on 1 core).\n");
}

}  // namespace
}  // namespace sky

int main(int argc, char** argv) {
  sky::Run(sky::BenchConfig::Parse(argc, argv));
  return 0;
}
