// Copyright (c) SkyBench-NG contributors.
// Reproduces paper Fig. 7: Q-Flow execution time decomposed into Init /
// Phase I / Phase II / Other as a function of the block size α, with
// PSkyline shown for comparison (its Phase I/II = local map / merge).
//
// Paper shape to reproduce: α = 2^13 near-optimal on all distributions;
// Phase I dominates on independent/anticorrelated data; PSkyline spends
// its time in the merge (Phase II); Q-Flow beats PSkyline on all but
// correlated data.
#include <cstdio>

#include "bench_util.h"

namespace sky {
namespace {

void Run(const BenchConfig& cfg) {
  const size_t n = cfg.n_override ? cfg.n_override
                                  : (cfg.full ? 1'000'000 : 20'000);
  const int d = cfg.d_override ? cfg.d_override : (cfg.full ? 12 : 8);
  const int t = cfg.max_threads > 0 ? cfg.max_threads : (cfg.full ? 16 : 4);

  for (const Distribution dist : AllDistributions()) {
    std::printf("== Fig. 7: Q-Flow phases vs alpha — %s (n=%zu d=%d t=%d) ==\n",
                DistributionName(dist), n, d, t);
    WorkloadSpec spec{dist, n, d, cfg.seed};
    const Dataset& data = WorkloadCache::Instance().Get(spec);
    Table table({"alpha", "init", "phase1", "phase2", "other", "total"});
    for (int log_alpha = 7; log_alpha <= 16; log_alpha += 3) {
      const size_t alpha = size_t{1} << log_alpha;
      const RunStats st = TimeAlgo(data, Algorithm::kQFlow, t, cfg, alpha);
      table.AddRow({"2^" + std::to_string(log_alpha),
                    Table::Num(st.init_seconds),
                    Table::Num(st.phase1_seconds),
                    Table::Num(st.phase2_seconds),
                    Table::Num(st.compress_seconds + st.other_seconds),
                    Table::Num(st.total_seconds)});
    }
    const RunStats ps = TimeAlgo(data, Algorithm::kPSkyline, t, cfg);
    table.AddRow({"PSkyline", Table::Num(0.0), Table::Num(ps.phase1_seconds),
                  Table::Num(ps.phase2_seconds), Table::Num(ps.other_seconds),
                  Table::Num(ps.total_seconds)});
    Emit(table, cfg);
    WorkloadCache::Instance().Clear();
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper Fig. 7): alpha=2^13 near-optimal everywhere; "
      "Phase I dominates Q-Flow on indep/anti; PSkyline's cost sits in its "
      "merge phase; Q-Flow wins on all but correlated data.\n");
}

}  // namespace
}  // namespace sky

int main(int argc, char** argv) {
  sky::Run(sky::BenchConfig::Parse(argc, argv));
  return 0;
}
