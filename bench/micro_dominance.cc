// Copyright (c) SkyBench-NG contributors.
// google-benchmark microbenchmarks for the dominance-test kernels — the
// primitive whose cost every skyline algorithm multiplies (paper §IV-A).
// Covers scalar vs AVX2, the dimensionality sweep of the paper's
// experiments, and the two extreme control-flow cases (early-exit on a
// dominating pair vs full scan on incomparable pairs).
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "data/dataset.h"
#include "dominance/dominance.h"

namespace sky {
namespace {

Dataset RandomData(int d, size_t n, uint64_t seed) {
  Dataset data(d, n);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) data.MutableRow(i)[j] = rng.NextFloat();
  }
  return data;
}

void BM_Dominates(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const bool simd = state.range(1) != 0;
  Dataset data = RandomData(d, 4096, 7);
  DomCtx dom(d, data.stride(), simd);
  size_t i = 0;
  for (auto _ : state) {
    const Value* p = data.Row(i & 4095);
    const Value* q = data.Row((i + 1) & 4095);
    benchmark::DoNotOptimize(dom.Dominates(p, q));
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_Dominates)
    ->ArgsProduct({{4, 8, 12, 16}, {0, 1}})
    ->ArgNames({"d", "simd"});

void BM_DominatesEarlyExit(benchmark::State& state) {
  // p strictly dominates q: the scalar kernel exits after one lane of
  // strictness is found, the SIMD kernel after one 8-lane block.
  const int d = static_cast<int>(state.range(0));
  const bool simd = state.range(1) != 0;
  Dataset data(d, 2);
  for (int j = 0; j < d; ++j) {
    data.MutableRow(0)[j] = 0.1f;
    data.MutableRow(1)[j] = 0.9f;
  }
  DomCtx dom(d, data.stride(), simd);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dom.Dominates(data.Row(0), data.Row(1)));
  }
}
BENCHMARK(BM_DominatesEarlyExit)
    ->ArgsProduct({{8, 16}, {0, 1}})
    ->ArgNames({"d", "simd"});

void BM_Compare(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const bool simd = state.range(1) != 0;
  Dataset data = RandomData(d, 4096, 11);
  DomCtx dom(d, data.stride(), simd);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dom.Compare(data.Row(i & 4095), data.Row((i + 7) & 4095)));
    ++i;
  }
}
BENCHMARK(BM_Compare)
    ->ArgsProduct({{4, 8, 12, 16}, {0, 1}})
    ->ArgNames({"d", "simd"});

void BM_PartitionMask(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const bool simd = state.range(1) != 0;
  Dataset data = RandomData(d, 4096, 13);
  DomCtx dom(d, data.stride(), simd);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dom.PartitionMask(data.Row(i & 4095), data.Row(2048)));
    ++i;
  }
}
BENCHMARK(BM_PartitionMask)
    ->ArgsProduct({{4, 8, 12, 16}, {0, 1}})
    ->ArgNames({"d", "simd"});

}  // namespace
}  // namespace sky

BENCHMARK_MAIN();
