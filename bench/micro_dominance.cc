// Copyright (c) SkyBench-NG contributors.
// google-benchmark microbenchmarks for the dominance-test kernels — the
// primitive whose cost every skyline algorithm multiplies (paper §IV-A).
// Covers scalar vs AVX2, the dimensionality sweep of the paper's
// experiments, the two extreme control-flow cases (early-exit on a
// dominating pair vs full scan on incomparable pairs), and the batched
// tile kernels (one-vs-8 and the many-vs-many window filter) against
// the one-vs-one paths they replace.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/random.h"
#include "data/dataset.h"
#include "dominance/batch.h"
#include "dominance/dominance.h"

namespace sky {
namespace {

Dataset RandomData(int d, size_t n, uint64_t seed) {
  Dataset data(d, n);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) data.MutableRow(i)[j] = rng.NextFloat();
  }
  return data;
}

void BM_Dominates(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const bool simd = state.range(1) != 0;
  Dataset data = RandomData(d, 4096, 7);
  DomCtx dom(d, data.stride(), simd);
  size_t i = 0;
  for (auto _ : state) {
    const Value* p = data.Row(i & 4095);
    const Value* q = data.Row((i + 1) & 4095);
    benchmark::DoNotOptimize(dom.Dominates(p, q));
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_Dominates)
    ->ArgsProduct({{4, 8, 12, 16}, {0, 1}})
    ->ArgNames({"d", "simd"});

void BM_DominatesEarlyExit(benchmark::State& state) {
  // p strictly dominates q: the scalar kernel exits after one lane of
  // strictness is found, the SIMD kernel after one 8-lane block.
  const int d = static_cast<int>(state.range(0));
  const bool simd = state.range(1) != 0;
  Dataset data(d, 2);
  for (int j = 0; j < d; ++j) {
    data.MutableRow(0)[j] = 0.1f;
    data.MutableRow(1)[j] = 0.9f;
  }
  DomCtx dom(d, data.stride(), simd);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dom.Dominates(data.Row(0), data.Row(1)));
  }
}
BENCHMARK(BM_DominatesEarlyExit)
    ->ArgsProduct({{8, 16}, {0, 1}})
    ->ArgNames({"d", "simd"});

void BM_Compare(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const bool simd = state.range(1) != 0;
  Dataset data = RandomData(d, 4096, 11);
  DomCtx dom(d, data.stride(), simd);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dom.Compare(data.Row(i & 4095), data.Row((i + 7) & 4095)));
    ++i;
  }
}
BENCHMARK(BM_Compare)
    ->ArgsProduct({{4, 8, 12, 16}, {0, 1}})
    ->ArgNames({"d", "simd"});

void BM_PartitionMask(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const bool simd = state.range(1) != 0;
  Dataset data = RandomData(d, 4096, 13);
  DomCtx dom(d, data.stride(), simd);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dom.PartitionMask(data.Row(i & 4095), data.Row(2048)));
    ++i;
  }
}
BENCHMARK(BM_PartitionMask)
    ->ArgsProduct({{4, 8, 12, 16}, {0, 1}})
    ->ArgNames({"d", "simd"});

// Equal is called by the SkyTree family and M(S) after a full partition
// mask, i.e. mostly on coincident or near-coincident rows — the
// `coincident` axis covers that case (where the vector kernel's d/8
// full-row compare wins) and the random case (where scalar's first-lane
// early exit wins).
void BM_Equal(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const bool simd = state.range(1) != 0;
  const bool coincident = state.range(2) != 0;
  Dataset data = RandomData(d, 4096, 17);
  if (coincident) {
    for (size_t i = 0; i + 3 < data.count(); ++i) {
      for (int j = 0; j < d; ++j) {
        data.MutableRow(i + 3)[j] = data.Row(i)[j];
      }
    }
  }
  DomCtx dom(d, data.stride(), simd);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dom.Equal(data.Row(i & 4095), data.Row((i + 3) & 4095)));
    ++i;
  }
}
BENCHMARK(BM_Equal)
    ->ArgsProduct({{4, 8, 16}, {0, 1}, {0, 1}})
    ->ArgNames({"d", "simd", "coincident"});

// One candidate vs one 8-point SoA tile: the batched unit of work,
// directly comparable with 8 iterations of BM_Dominates.
void BM_TileDominates(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const bool simd = state.range(1) != 0;
  Dataset data = RandomData(d, 4096, 19);
  TileBlock tiles(d, 4096);
  tiles.AppendRows(data.Row(0), data.stride(), 4096);
  DomCtx dom(d, data.stride(), simd);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dom.TileDominates(data.Row(i & 4095), tiles.Tile(i & 511),
                          kFullLaneMask));
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kSimdWidth);
}
BENCHMARK(BM_TileDominates)
    ->ArgsProduct({{4, 8, 12, 16}, {0, 1}})
    ->ArgNames({"d", "simd"});

// One candidate scanned against a window until its first dominator (the
// exact Phase-I shape) — one-vs-one AVX2 loop vs the batched tile scan.
// items_processed counts the dominance tests actually performed, so the
// reported items/s is directly the tests/s throughput the acceptance
// criterion compares.
void BM_WindowScanOneVsOne(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const size_t window = static_cast<size_t>(state.range(1));
  Dataset data = RandomData(d, window, 23);
  Dataset cands = RandomData(d, window, 29);
  DomCtx dom(d, data.stride(), /*use_simd=*/true);
  size_t i = 0;
  uint64_t dts = 0;
  for (auto _ : state) {
    const Value* q = cands.Row(i % window);
    for (size_t s = 0; s < window; ++s) {
      ++dts;
      if (dom.Dominates(data.Row(s), q)) break;
    }
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(dts));
}
BENCHMARK(BM_WindowScanOneVsOne)
    ->ArgsProduct({{4, 8, 12, 16}, {4096}})
    ->ArgNames({"d", "window"});

void BM_WindowScanBatched(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const size_t window = static_cast<size_t>(state.range(1));
  Dataset data = RandomData(d, window, 23);
  Dataset cands = RandomData(d, window, 29);
  TileBlock tiles(d, window);
  tiles.AppendRows(data.Row(0), data.stride(), window);
  DomCtx dom(d, data.stride(), /*use_simd=*/true);
  size_t i = 0;
  uint64_t dts = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dom.DominatedByAny(cands.Row(i % window), tiles, window, &dts));
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(dts));
}
BENCHMARK(BM_WindowScanBatched)
    ->ArgsProduct({{4, 8, 12, 16}, {4096}})
    ->ArgNames({"d", "window"});

// The many-vs-many entry point as the hot consumers use it: a block of
// candidates filtered against the window with cache-blocked tile chunks.
void BM_FilterTile(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const size_t window = 4096;
  const size_t cands = 512;
  Dataset wdata = RandomData(d, window, 29);
  Dataset cdata = RandomData(d, cands, 31);
  TileBlock tiles(d, window);
  tiles.AppendRows(wdata.Row(0), wdata.stride(), window);
  DomCtx dom(d, wdata.stride(), /*use_simd=*/true);
  std::vector<uint8_t> flags(cands);
  for (auto _ : state) {
    std::fill(flags.begin(), flags.end(), uint8_t{0});
    benchmark::DoNotOptimize(
        dom.FilterTile(cdata.Row(0), cands, tiles, flags.data(), nullptr));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(cands));
}
BENCHMARK(BM_FilterTile)
    ->ArgsProduct({{4, 8, 12, 16}})
    ->ArgNames({"d"});

}  // namespace
}  // namespace sky

BENCHMARK_MAIN();
