// Copyright (c) SkyBench-NG contributors.
// Design-choice ablation (paper §VI-B/§VI-E): the M(S) data structure and
// partitioning. Hybrid versus Q-Flow is exactly "with structure" versus
// "without"; the dominance-test counts quantify how much work the
// two-level mask filtering removes — the paper's central explanatory
// metric.
#include <cstdio>

#include "bench_util.h"

namespace sky {
namespace {

void Run(const BenchConfig& cfg) {
  const size_t n = cfg.n_override ? cfg.n_override
                                  : (cfg.full ? 1'000'000 : 30'000);
  const int d = cfg.d_override ? cfg.d_override : 8;
  const int t = cfg.max_threads > 0 ? cfg.max_threads : (cfg.full ? 16 : 4);

  std::printf(
      "== Ablation: M(S) structure — Q-Flow vs Hybrid DTs (n=%zu, d=%d, "
      "t=%d) ==\n",
      n, d, t);
  Table table({"distribution", "Q-Flow DTs", "Hybrid DTs", "DT reduction",
               "mask skips", "QF (s)", "HY (s)"});
  for (const Distribution dist : AllDistributions()) {
    WorkloadSpec spec{dist, n, d, cfg.seed};
    const Dataset& data = WorkloadCache::Instance().Get(spec);
    Options qf;
    qf.algorithm = Algorithm::kQFlow;
    qf.threads = t;
    qf.count_dts = true;
    Options hy = qf;
    hy.algorithm = Algorithm::kHybrid;
    const RunStats sq = RunTimed(data, qf, cfg.repeats, cfg.verify).stats;
    const RunStats sh = RunTimed(data, hy, cfg.repeats, cfg.verify).stats;
    table.AddRow(
        {DistributionName(dist), Table::Int(sq.dominance_tests),
         Table::Int(sh.dominance_tests),
         Table::Num(static_cast<double>(sq.dominance_tests) /
                        static_cast<double>(std::max<uint64_t>(
                            1, sh.dominance_tests)),
                    1) +
             "x",
         Table::Int(sh.mask_filter_hits), Table::Num(sq.total_seconds),
         Table::Num(sh.total_seconds)});
    WorkloadCache::Instance().Clear();
  }
  Emit(table, cfg);
  std::printf(
      "\nExpected shape (paper §VI-E / Fig. 5): Hybrid executes a small "
      "fraction of Q-Flow's dominance tests on indep/anti data, which is "
      "exactly why it wins end-to-end.\n");
}

}  // namespace
}  // namespace sky

int main(int argc, char** argv) {
  sky::Run(sky::BenchConfig::Parse(argc, argv));
  return 0;
}
