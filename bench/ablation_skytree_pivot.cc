// Copyright (c) SkyBench-NG contributors.
// Extension ablation: pivot selection in the *recursive* partitioning
// family. The paper's §III attributes the difference between OSP [23]
// and BSkyTree-P [15] to how the pivot is selected (random skyline point
// vs range-minimizing "balanced" point). This bench quantifies that on
// the sequential recursion (BSkyTree) and adds BSkyTree-S for reference.
#include <cstdio>

#include "bench_util.h"

namespace sky {
namespace {

void Run(const BenchConfig& cfg) {
  const size_t n = cfg.n_override ? cfg.n_override
                                  : (cfg.full ? 1'000'000 : 30'000);
  const int d = cfg.d_override ? cfg.d_override : 8;

  std::printf(
      "== Ablation: pivot policy in recursive partitioning (n=%zu, d=%d) "
      "==\n",
      n, d);
  Table table({"distribution", "BSkyTree/balanced (s)", "OSP/random (s)",
               "manhattan (s)", "BSkyTree-S (s)"});
  for (const Distribution dist : AllDistributions()) {
    WorkloadSpec spec{dist, n, d, cfg.seed};
    const Dataset& data = WorkloadCache::Instance().Get(spec);
    const double balanced =
        TimeAlgo(data, Algorithm::kBSkyTree, 1, cfg, 0, PivotPolicy::kBalanced)
            .total_seconds;
    const double osp =
        TimeAlgo(data, Algorithm::kOsp, 1, cfg).total_seconds;
    const double manhattan =
        TimeAlgo(data, Algorithm::kBSkyTree, 1, cfg, 0,
                 PivotPolicy::kManhattan)
            .total_seconds;
    const double flat =
        TimeAlgo(data, Algorithm::kBSkyTreeS, 1, cfg).total_seconds;
    table.AddRow({DistributionName(dist), Table::Num(balanced),
                  Table::Num(osp), Table::Num(manhattan), Table::Num(flat)});
    WorkloadCache::Instance().Clear();
  }
  Emit(table, cfg);
  std::printf(
      "\nExpected shape (paper §III / [15]): the balanced pivot beats the "
      "random (OSP) pivot on non-correlated data; the non-recursive "
      "BSkyTree-S trails the recursive variants as the skyline grows.\n");
}

}  // namespace
}  // namespace sky

int main(int argc, char** argv) {
  sky::Run(sky::BenchConfig::Parse(argc, argv));
  return 0;
}
