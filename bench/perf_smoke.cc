// Copyright (c) SkyBench-NG contributors.
// Perf smoke: a fixed, small (distribution x n x d) grid plus dominance
// kernel micro-measurements, emitted as machine-readable JSON so CI
// finally records a perf trajectory (BENCH_perf_smoke.json). Each entry
// carries {name, ns_per_op, dom_tests_per_s}. With --check the run also
// gates the batched-kernel win: at d <= 8 the one-vs-many tile scan must
// deliver >= 2x the dominance-test throughput of the one-vs-one AVX2
// kernel (skipped when the host lacks AVX2 — there is nothing to gate).
// A second gate holds the mutation path to its promise: a 64-row
// incremental insert must be >= 50x faster than rebuilding the same
// engine state from scratch (re-register + per-shard skyline bootstrap).
// A third gate covers the zonemap index: a 1%-box constrained query at
// anti n=200k d=8 served through the cached index must be >= 2x faster
// than the materialize-view + sequential-scan baseline. A fourth gate
// holds the shared work-stealing executor's win: 8 clients serving
// sharded 1%-box queries through one persistent executor must deliver
// >= 1.3x the throughput of the per-query-ThreadPool baseline.
//
//   perf_smoke [--out=PATH] [--check]
//
// Wall-clock entries are medians of --repeats runs (default 3); kernel
// entries auto-calibrate to ~0.2s of work. Numbers are only comparable
// on the same host, which is exactly what a CI trajectory needs.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <algorithm>

#include "bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "dominance/batch.h"
#include "dominance/dominance.h"
#include "parallel/executor.h"
#include "parallel/thread_pool.h"
#include "query/delta.h"
#include "query/engine.h"
#include "query/shard_map.h"

namespace sky {
namespace {

struct Entry {
  std::string name;
  double ns_per_op = 0.0;        // wall time per unit of work
  double dom_tests_per_s = 0.0;  // dominance tests per second
};

Dataset RandomData(int d, size_t n, uint64_t seed) {
  Dataset data(d, n);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) data.MutableRow(i)[j] = rng.NextFloat();
  }
  return data;
}

/// Time `body`, which performs one window-scan repetition and returns
/// the number of dominance tests it executed; auto-calibrates the
/// repetition count to ~0.2s and reports per-test throughput.
template <typename Fn>
Entry TimeScan(const std::string& name, Fn&& body) {
  body();  // warm up
  WallTimer cal;
  body();
  const double once = std::max(cal.Seconds(), 1e-9);
  const int reps = std::max(1, static_cast<int>(0.2 / once));
  WallTimer timer;
  uint64_t dts = 0;
  for (int r = 0; r < reps; ++r) dts += body();
  const double elapsed = std::max(timer.Seconds(), 1e-12);
  const double ops = static_cast<double>(std::max<uint64_t>(dts, 1));
  return {name, elapsed / ops * 1e9, ops / elapsed};
}

/// One-vs-one vs batched window-scan throughput at dimensionality d:
/// the exact Phase-I shape (each candidate scans the window until its
/// first dominator), counting the dominance tests actually performed.
std::pair<Entry, Entry> KernelPair(int d) {
  constexpr size_t kWindow = 4096;
  constexpr size_t kCands = 512;
  Dataset window = RandomData(d, kWindow, 7);
  Dataset cands = RandomData(d, kCands, 11);
  TileBlock tiles(d, kWindow);
  tiles.AppendRows(window.Row(0), window.stride(), kWindow);
  DomCtx dom(d, window.stride(), /*use_simd=*/true);
  const std::string suffix = "/d=" + std::to_string(d);
  Entry one = TimeScan("kernel/one_vs_one_avx2" + suffix, [&]() -> uint64_t {
    uint64_t dts = 0;
    for (size_t c = 0; c < kCands; ++c) {
      const Value* q = cands.Row(c);
      for (size_t s = 0; s < kWindow; ++s) {
        ++dts;
        if (dom.Dominates(window.Row(s), q)) break;
      }
    }
    return dts;
  });
  Entry batched = TimeScan("kernel/batched_tile" + suffix,
                           [&]() -> uint64_t {
                             uint64_t dts = 0;
                             for (size_t c = 0; c < kCands; ++c) {
                               dom.DominatedByAny(cands.Row(c), tiles,
                                                  kWindow, &dts);
                             }
                             return dts;
                           });
  return {one, batched};
}

/// Median-of-repeats wall clock for one algorithm cell of the fixed
/// grid, with dominance-test counting on.
Entry AlgoCell(Algorithm algo, Distribution dist, const char* dist_name,
               size_t n, int d, int repeats) {
  WorkloadSpec spec{dist, n, d, 42};
  const Dataset& data = WorkloadCache::Instance().Get(spec);
  Options o;
  o.algorithm = algo;
  o.threads = 1;
  o.count_dts = true;
  const RunStats st = RunTimed(data, o, repeats, /*verify=*/false).stats;
  char name[128];
  std::snprintf(name, sizeof(name), "%s/%s/n=%zu/d=%d",
                AlgorithmName(algo), dist_name, n, d);
  const double secs = std::max(st.total_seconds, 1e-12);
  return {name, secs * 1e9,
          static_cast<double>(st.dominance_tests) / secs};
}

/// Incremental mutation vs full rebuild on the serving layer: a 64-row
/// InsertPoints batch repairs only the touched shards' maintained
/// skylines in place. Reproducing the same engine state from scratch
/// means re-registering the whole n-row dataset (shard build + sketches)
/// AND recomputing every shard's maintained skyline — that pair is the
/// baseline the delta path must beat by a wide margin.
/// Returns {incremental, rebuild}; ns_per_op is the whole operation.
std::pair<Entry, Entry> MutationPair(int repeats) {
  constexpr size_t kN = 200'000;
  constexpr int kD = 8;
  constexpr size_t kBatch = 64;
  WorkloadSpec spec{Distribution::kAnticorrelated, kN, kD, 42};
  const Dataset& data = WorkloadCache::Instance().Get(spec);
  const Dataset batch = RandomData(kD, kBatch, 99);

  SkylineEngine::Config cfg;
  cfg.shards = 4;
  cfg.shard_policy = ShardPolicy::kMedianPivot;
  SkylineEngine engine(cfg);
  engine.RegisterDataset("smoke", data.Clone());
  // Warm-up batch: the first insert on each shard pays the one-time
  // skyline bootstrap; steady-state churn is what the row measures.
  engine.InsertPoints("smoke", batch);

  const auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  const int reps = std::max(repeats, 3);
  std::vector<double> insert_s;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    engine.InsertPoints("smoke", batch);
    insert_s.push_back(std::max(t.Seconds(), 1e-12));
  }
  std::vector<double> reg_s;
  for (int r = 0; r < reps; ++r) {
    Dataset copy = data.Clone();  // clone outside the timed region
    WallTimer t;
    engine.RegisterDataset("smoke", std::move(copy));
    const std::shared_ptr<const ShardMap> shards =
        engine.FindShards("smoke");
    for (size_t s = 0; s < shards->shard_count(); ++s) {
      // The state the delta path maintains incrementally: without this,
      // the next mutation on a fresh registration pays the bootstrap.
      ComputeShardSkyline(shards->shard(s).rows());
    }
    reg_s.push_back(std::max(t.Seconds(), 1e-12));
  }
  char name[128];
  std::snprintf(name, sizeof(name),
                "engine/incremental_insert/anti/n=%zu/d=%d/batch=%zu", kN, kD,
                kBatch);
  Entry inc{name, median(insert_s) * 1e9, 0.0};
  std::snprintf(name, sizeof(name), "engine/full_rebuild/anti/n=%zu/d=%d",
                kN, kD);
  Entry reg{name, median(reg_s) * 1e9, 0.0};
  return {inc, reg};
}

/// Metrics overhead on the serving hot path: the same engine-served query
/// with Config::metrics on vs off (the off engine skips every registry
/// update). The result cache is disabled so each Execute actually plans
/// and computes — a cache-hit-only loop would understate the per-query
/// instrument cost relative to real work. Returns {metrics_on,
/// metrics_off}; ns_per_op is one Execute call (median of repeats).
std::pair<Entry, Entry> MetricsOverheadPair(int repeats) {
  constexpr size_t kN = 20'000;
  constexpr int kD = 8;
  WorkloadSpec spec{Distribution::kAnticorrelated, kN, kD, 42};
  const Dataset& data = WorkloadCache::Instance().Get(spec);

  const auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  // Median of at least 5: the gate asserts a <= 3% delta, tighter than
  // typical single-run CI noise at this problem size.
  const int reps = std::max(repeats, 5);
  const auto measure = [&](bool metrics) {
    SkylineEngine::Config cfg;
    cfg.result_cache_capacity = 0;  // every Execute computes
    cfg.metrics = metrics;
    SkylineEngine engine(cfg);
    engine.RegisterDataset("smoke", data.Clone());
    Options o;
    o.algorithm = Algorithm::kHybrid;
    o.threads = 1;
    engine.Execute("smoke", QuerySpec{}, o);  // warm up
    std::vector<double> secs;
    for (int r = 0; r < reps; ++r) {
      WallTimer t;
      engine.Execute("smoke", QuerySpec{}, o);
      secs.push_back(std::max(t.Seconds(), 1e-12));
    }
    return median(secs);
  };
  char name[128];
  std::snprintf(name, sizeof(name), "engine/metrics_on/anti/n=%zu/d=%d", kN,
                kD);
  Entry on{name, measure(true) * 1e9, 0.0};
  std::snprintf(name, sizeof(name), "engine/metrics_off/anti/n=%zu/d=%d", kN,
                kD);
  Entry off{name, measure(false) * 1e9, 0.0};
  return {on, off};
}

/// Cooperative-cancellation overhead: the same engine-served query once
/// with no deadline (no token armed, checkpoints are a single untaken
/// branch) and once under a deadline far too generous to ever fire (a
/// token is armed, so every checkpoint actually polls the steady
/// clock). Q-Flow is the algorithm with the finest checkpoint cadence
/// (every alpha-sized window pass), making this the worst-case arm.
/// Returns {armed, off}; ns_per_op is one Execute call (median of
/// repeats).
std::pair<Entry, Entry> CancelOverheadPair(int repeats) {
  constexpr size_t kN = 20'000;
  constexpr int kD = 8;
  WorkloadSpec spec{Distribution::kAnticorrelated, kN, kD, 42};
  const Dataset& data = WorkloadCache::Instance().Get(spec);

  const auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  const int reps = std::max(repeats, 5);
  const auto measure = [&](double deadline_ms) {
    SkylineEngine::Config cfg;
    cfg.result_cache_capacity = 0;  // every Execute computes
    SkylineEngine engine(cfg);
    engine.RegisterDataset("smoke", data.Clone());
    Options o;
    o.algorithm = Algorithm::kQFlow;
    o.threads = 1;
    o.deadline_ms = deadline_ms;
    engine.Execute("smoke", QuerySpec{}, o);  // warm up
    std::vector<double> secs;
    for (int r = 0; r < reps; ++r) {
      WallTimer t;
      engine.Execute("smoke", QuerySpec{}, o);
      secs.push_back(std::max(t.Seconds(), 1e-12));
    }
    return median(secs);
  };
  char name[128];
  std::snprintf(name, sizeof(name), "engine/cancel_armed/anti/n=%zu/d=%d",
                kN, kD);
  Entry armed{name, measure(/*deadline_ms=*/1e9) * 1e9, 0.0};
  std::snprintf(name, sizeof(name), "engine/cancel_off/anti/n=%zu/d=%d", kN,
                kD);
  Entry off{name, measure(/*deadline_ms=*/0.0) * 1e9, 0.0};
  return {armed, off};
}

/// Index-accelerated constrained skyline vs the non-indexed scan path:
/// the same engine-served query — anti n=200k d=8 under a 1%-selectivity
/// dim-0 box — once with --algo=zonemap (block AABB pruning over the
/// cached clustered index) and once forcing the classic materialize-view
/// + sequential-scan skyline (SSkyline). The result cache is off and the
/// boxes differ per repeat, so every Execute plans and computes; the
/// warm-up query pays the one-time index build, leaving the rows to
/// measure steady-state serving. Returns {zonemap, scan}; ns_per_op is
/// one Execute call (median of repeats).
std::pair<Entry, Entry> ZonemapPair(int repeats) {
  constexpr size_t kN = 200'000;
  constexpr int kD = 8;
  WorkloadSpec spec{Distribution::kAnticorrelated, kN, kD, 42};
  const Dataset& data = WorkloadCache::Instance().Get(spec);

  const auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  const int reps = std::max(repeats, 5);
  const auto measure = [&](Algorithm algo) {
    SkylineEngine::Config cfg;
    cfg.result_cache_capacity = 0;  // every Execute computes
    SkylineEngine engine(cfg);
    engine.RegisterDataset("smoke", data.Clone());
    Options o;
    o.algorithm = algo;
    o.threads = 1;
    QuerySpec warm;
    warm.Constrain(0, 0.05f, 0.06f);
    engine.Execute("smoke", warm, o);  // builds and caches the index
    std::vector<double> secs;
    for (int r = 0; r < reps; ++r) {
      QuerySpec q;
      const float lo = 0.10f + 0.01f * static_cast<float>(r);
      q.Constrain(0, lo, lo + 0.01f);
      WallTimer t;
      engine.Execute("smoke", q, o);
      secs.push_back(std::max(t.Seconds(), 1e-12));
    }
    return median(secs);
  };
  char name[128];
  std::snprintf(name, sizeof(name),
                "engine/zonemap_constrained/anti/n=%zu/d=%d/box=1pct", kN,
                kD);
  Entry zm{name, measure(Algorithm::kZonemap) * 1e9, 0.0};
  std::snprintf(name, sizeof(name),
                "engine/scan_constrained/anti/n=%zu/d=%d/box=1pct", kN, kD);
  Entry scan{name, measure(Algorithm::kSSkyline) * 1e9, 0.0};
  return {zm, scan};
}

/// Concurrent sharded serving: 8 client threads hammer one engine with
/// ~0.1%-box queries over an 8-shard anti n=200k d=8 registration, once
/// with Config::shared_executor off (the seed's per-query ThreadPool:
/// every request spawns and joins its own workers) and once on the
/// engine's persistent work-stealing executor (requests submit capped
/// task groups). Steady state: the result cache is off so every Execute
/// plans, computes and merges, while the fixed box set keeps the shard
/// view cache warm — the rows time the serving stack, not the one-time
/// O(n) view filters, which are identical in both arms. Returns
/// {pooled, executor}; ns_per_op is one served query (aggregate wall
/// time / queries, median of repeats).
std::pair<Entry, Entry> ConcurrentServingPair(int repeats) {
  constexpr size_t kN = 200'000;
  constexpr int kD = 8;
  constexpr size_t kShards = 8;
  constexpr int kClients = 8;
  constexpr int kQueriesEach = 8;
  WorkloadSpec spec{Distribution::kAnticorrelated, kN, kD, 42};
  const Dataset& data = WorkloadCache::Instance().Get(spec);

  // Narrow boxes: the point-lookup-flavoured end of the serving mix,
  // where per-query compute is small and the per-request scheduling cost
  // the two arms differ in is actually visible.
  std::vector<QuerySpec> boxes;
  for (int b = 0; b < 4; ++b) {
    QuerySpec q;
    const float lo = 0.10f + 0.01f * static_cast<float>(b);
    q.Constrain(0, lo, lo + 0.001f);
    boxes.push_back(q);
  }

  const auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  const int reps = std::max(repeats, 3);
  const auto measure = [&](bool shared) {
    SkylineEngine::Config cfg;
    cfg.result_cache_capacity = 0;  // every Execute computes and merges
    cfg.view_cache_capacity = 64;   // all shard x box views stay warm
    cfg.shards = kShards;
    cfg.shard_policy = ShardPolicy::kMedianPivot;
    cfg.shared_executor = shared;
    SkylineEngine engine(cfg);
    engine.RegisterDataset("smoke", data.Clone());
    Options warm;
    warm.threads = static_cast<int>(kShards);
    for (const QuerySpec& box : boxes) {
      engine.Execute("smoke", box, warm);  // builds the per-shard views
    }
    std::vector<double> per_query_s;
    for (int rep = 0; rep < reps; ++rep) {
      ThreadPool client_pool(kClients);
      WallTimer t;
      client_pool.RunOnAll([&](int client) {
        Options o;
        o.threads = static_cast<int>(kShards);  // the request's ask: a cap
                                                // vs threads to spawn
        for (int q = 0; q < kQueriesEach; ++q) {
          engine.Execute("smoke", boxes[(client + q) % boxes.size()], o);
        }
      });
      per_query_s.push_back(std::max(t.Seconds(), 1e-12) /
                            (kClients * kQueriesEach));
    }
    return median(per_query_s);
  };
  char name[128];
  std::snprintf(name, sizeof(name),
                "engine/concurrent_serving_pooled/anti/n=%zu/d=%d/shards=%zu/"
                "clients=%d",
                kN, kD, kShards, kClients);
  Entry pooled{name, measure(false) * 1e9, 0.0};
  std::snprintf(name, sizeof(name),
                "engine/concurrent_serving_executor/anti/n=%zu/d=%d/"
                "shards=%zu/clients=%d",
                kN, kD, kShards, kClients);
  Entry shared{name, measure(true) * 1e9, 0.0};
  return {pooled, shared};
}

void WriteJson(const std::string& path, const std::vector<Entry>& entries) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "perf_smoke: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"schema\": \"skybench-perf-smoke-v1\",\n");
  std::fprintf(f, "  \"avx2\": %s,\n", CpuHasAvx2() ? "true" : "false");
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < entries.size(); ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"ns_per_op\": %.3f, "
                 "\"dom_tests_per_s\": %.3e}%s\n",
                 entries[i].name.c_str(), entries[i].ns_per_op,
                 entries[i].dom_tests_per_s,
                 i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

int Main(int argc, char** argv) {
  std::string out = "BENCH_perf_smoke.json";
  bool check = false;
  int repeats = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strncmp(argv[i], "--repeats=", 10) == 0) {
      repeats = std::max(1, std::atoi(argv[i] + 10));
    } else {
      std::fprintf(stderr,
                   "usage: perf_smoke [--out=PATH] [--check] "
                   "[--repeats=R]\n");
      return 2;
    }
  }

  std::vector<Entry> entries;
  bool gate_ok = true;

  // ---- Kernel micro: one-vs-one AVX2 vs batched tile scan.
  for (const int d : {4, 8, 16}) {
    const auto [one, batched] = KernelPair(d);
    entries.push_back(one);
    entries.push_back(batched);
    const double ratio = batched.dom_tests_per_s / one.dom_tests_per_s;
    std::printf("%-32s %10.1f ns/op  %10.3e tests/s\n", one.name.c_str(),
                one.ns_per_op, one.dom_tests_per_s);
    std::printf("%-32s %10.1f ns/op  %10.3e tests/s  (%.2fx)\n",
                batched.name.c_str(), batched.ns_per_op,
                batched.dom_tests_per_s, ratio);
    if (check && CpuHasAvx2() && d <= 8 && ratio < 2.0) {
      std::fprintf(stderr,
                   "perf_smoke: GATE FAILED at d=%d: batched kernel "
                   "%.2fx one-vs-one (need >= 2x)\n",
                   d, ratio);
      gate_ok = false;
    }
  }

  // ---- Fixed algorithm grid (fig12/fig13-flavoured Hybrid cells plus a
  // Q-Flow reference), small enough for CI, large enough that the
  // window scans dominate.
  struct Cell {
    Algorithm algo;
    Distribution dist;
    const char* dist_name;
    size_t n;
    int d;
  };
  const Cell cells[] = {
      {Algorithm::kHybrid, Distribution::kIndependent, "indep", 20000, 4},
      {Algorithm::kHybrid, Distribution::kIndependent, "indep", 20000, 8},
      {Algorithm::kHybrid, Distribution::kAnticorrelated, "anti", 20000, 8},
      {Algorithm::kHybrid, Distribution::kIndependent, "indep", 50000, 8},
      {Algorithm::kQFlow, Distribution::kAnticorrelated, "anti", 20000, 8},
  };
  for (const Cell& c : cells) {
    entries.push_back(
        AlgoCell(c.algo, c.dist, c.dist_name, c.n, c.d, repeats));
    const Entry& e = entries.back();
    std::printf("%-32s %10.0f ns/op  %10.3e tests/s\n", e.name.c_str(),
                e.ns_per_op, e.dom_tests_per_s);
  }

  // ---- Mutation path: incremental insert vs full re-registration.
  {
    const auto [inc, reg] = MutationPair(repeats);
    entries.push_back(inc);
    entries.push_back(reg);
    const double speedup = reg.ns_per_op / inc.ns_per_op;
    std::printf("%-48s %12.0f ns/op\n", inc.name.c_str(), inc.ns_per_op);
    std::printf("%-48s %12.0f ns/op  (insert %.0fx faster)\n",
                reg.name.c_str(), reg.ns_per_op, speedup);
    if (check && speedup < 50.0) {
      std::fprintf(stderr,
                   "perf_smoke: GATE FAILED: incremental insert only "
                   "%.1fx faster than re-registration (need >= 50x)\n",
                   speedup);
      gate_ok = false;
    }
  }

  // ---- Zonemap index: constrained serving vs the non-indexed scan.
  {
    const auto [zm, scan] = ZonemapPair(repeats);
    entries.push_back(zm);
    entries.push_back(scan);
    const double speedup = scan.ns_per_op / zm.ns_per_op;
    std::printf("%-48s %12.0f ns/op\n", zm.name.c_str(), zm.ns_per_op);
    std::printf("%-48s %12.0f ns/op  (zonemap %.2fx faster)\n",
                scan.name.c_str(), scan.ns_per_op, speedup);
    if (check && speedup < 2.0) {
      std::fprintf(stderr,
                   "perf_smoke: GATE FAILED: zonemap-served constrained "
                   "query only %.2fx the scan baseline (need >= 2x)\n",
                   speedup);
      gate_ok = false;
    }
  }

  // ---- Shared executor: concurrent sharded serving vs per-query pools.
  {
    const auto [pooled, shared] = ConcurrentServingPair(repeats);
    entries.push_back(pooled);
    entries.push_back(shared);
    const double speedup = pooled.ns_per_op / shared.ns_per_op;
    std::printf("%-48s %12.0f ns/op\n", pooled.name.c_str(),
                pooled.ns_per_op);
    std::printf("%-48s %12.0f ns/op  (executor %.2fx faster)\n",
                shared.name.c_str(), shared.ns_per_op, speedup);
    if (check && speedup < 1.3) {
      std::fprintf(stderr,
                   "perf_smoke: GATE FAILED: shared-executor concurrent "
                   "serving only %.2fx the per-query-pool baseline "
                   "(need >= 1.3x)\n",
                   speedup);
      gate_ok = false;
    }
  }

  // ---- Observability overhead: metrics-on vs metrics-off serving.
  {
    const auto [on, off] = MetricsOverheadPair(repeats);
    entries.push_back(on);
    entries.push_back(off);
    const double ratio = on.ns_per_op / off.ns_per_op;
    std::printf("%-48s %12.0f ns/op\n", off.name.c_str(), off.ns_per_op);
    std::printf("%-48s %12.0f ns/op  (%.3fx baseline)\n", on.name.c_str(),
                on.ns_per_op, ratio);
    if (check && ratio > 1.03) {
      std::fprintf(stderr,
                   "perf_smoke: GATE FAILED: metrics-on serving %.3fx "
                   "metrics-off (need <= 1.03x)\n",
                   ratio);
      gate_ok = false;
    }
  }

  // ---- Cancellation overhead: armed deadline token vs no token.
  {
    const auto [armed, off] = CancelOverheadPair(repeats);
    entries.push_back(armed);
    entries.push_back(off);
    const double ratio = armed.ns_per_op / off.ns_per_op;
    std::printf("%-48s %12.0f ns/op\n", off.name.c_str(), off.ns_per_op);
    std::printf("%-48s %12.0f ns/op  (%.3fx baseline)\n", armed.name.c_str(),
                armed.ns_per_op, ratio);
    if (check && ratio > 1.03) {
      std::fprintf(stderr,
                   "perf_smoke: GATE FAILED: deadline-armed serving %.3fx "
                   "the no-deadline baseline (need <= 1.03x)\n",
                   ratio);
      gate_ok = false;
    }
  }

  WriteJson(out, entries);
  std::printf("perf_smoke: wrote %zu entries to %s\n", entries.size(),
              out.c_str());
  if (!gate_ok) return 1;
  return 0;
}

}  // namespace
}  // namespace sky

int main(int argc, char** argv) { return sky::Main(argc, argv); }
