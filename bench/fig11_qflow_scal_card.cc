// Copyright (c) SkyBench-NG contributors.
// Reproduces paper Fig. 11: multi-threaded scalability of Q-Flow versus
// PSkyline with respect to cardinality (d fixed; t swept).
//
// Paper shape to reproduce: Q-Flow up to ~1.7x/1.3x faster on independent
// and anticorrelated data; on correlated data its O(n) initialization
// makes it up to 4x slower than PSkyline.
#include <cstdio>

#include "bench_util.h"

namespace sky {
namespace {

void Run(const BenchConfig& cfg) {
  const int d = cfg.d_override ? cfg.d_override : (cfg.full ? 12 : 6);
  const int max_t = cfg.max_threads > 0 ? cfg.max_threads
                                        : (cfg.full ? 16 : 4);
  const std::vector<size_t> ns =
      cfg.full ? std::vector<size_t>{500'000, 1'000'000, 2'000'000,
                                     4'000'000, 8'000'000}
               : std::vector<size_t>{10'000, 20'000, 40'000};

  for (const Distribution dist : AllDistributions()) {
    std::printf(
        "== Fig. 11: Q-Flow vs PSkyline w.r.t. n — %s (d=%d), seconds ==\n",
        DistributionName(dist), d);
    std::vector<std::string> headers{"n"};
    for (int t = 1; t <= max_t; t *= 2) {
      headers.push_back("QF(t=" + std::to_string(t) + ")");
      headers.push_back("PS(t=" + std::to_string(t) + ")");
    }
    Table table(headers);
    for (const size_t n : ns) {
      WorkloadSpec spec{dist, n, d, cfg.seed};
      const Dataset& data = WorkloadCache::Instance().Get(spec);
      std::vector<std::string> row{Table::Int(n)};
      for (int t = 1; t <= max_t; t *= 2) {
        row.push_back(
            Table::Num(TimeAlgo(data, Algorithm::kQFlow, t, cfg)
                           .total_seconds));
        row.push_back(
            Table::Num(TimeAlgo(data, Algorithm::kPSkyline, t, cfg)
                           .total_seconds));
      }
      table.AddRow(std::move(row));
      WorkloadCache::Instance().Clear();
    }
    Emit(table, cfg);
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper Fig. 11): Q-Flow ahead on indep/anti, behind "
      "on correlated (O(n) init overhead); both scale linearly in t on "
      "multi-core hosts.\n");
}

}  // namespace
}  // namespace sky

int main(int argc, char** argv) {
  sky::Run(sky::BenchConfig::Parse(argc, argv));
  return 0;
}
