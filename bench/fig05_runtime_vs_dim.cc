// Copyright (c) SkyBench-NG contributors.
// Reproduces paper Fig. 5: run-time of the five headline algorithms as a
// function of dimensionality, per distribution (n fixed; parallel
// algorithms at t threads, BSkyTree sequential).
//
// Paper shape to reproduce: on correlated data everything is fast and
// PSkyline competitive at low d; on independent/anticorrelated data
// Hybrid is the clear winner at every d, PSkyline the worst, and the gap
// widens with d (region-wise incomparability grows with d).
#include <cstdio>

#include "bench_util.h"

namespace sky {
namespace {

void Run(const BenchConfig& cfg) {
  const size_t n = cfg.n_override ? cfg.n_override
                                  : (cfg.full ? 1'000'000 : 20'000);
  const int t = cfg.max_threads > 0 ? cfg.max_threads : (cfg.full ? 16 : 4);
  const std::vector<int> ds = cfg.full
                                  ? std::vector<int>{6, 8, 10, 12, 14, 16}
                                  : std::vector<int>{4, 6, 8, 10, 12};

  for (const Distribution dist : AllDistributions()) {
    std::printf("== Fig. 5: run-time (sec) vs d — %s (n=%zu, t=%d) ==\n",
                DistributionName(dist), n, t);
    Table table({"d", "BSkyTree", "Hybrid", "PBSkyTree", "Q-Flow",
                 "PSkyline", "|sky|"});
    for (const int d : ds) {
      WorkloadSpec spec{dist, n, d, cfg.seed};
      const Dataset& data = WorkloadCache::Instance().Get(spec);
      std::vector<std::string> row{Table::Int(static_cast<uint64_t>(d))};
      uint64_t sky_size = 0;
      for (const HeadlineAlgo& ha : HeadlineAlgos()) {
        const RunStats st =
            TimeAlgo(data, ha.algo, ha.parallel ? t : 1, cfg);
        row.push_back(Table::Num(st.total_seconds));
        sky_size = st.skyline_size;
      }
      row.push_back(Table::Int(sky_size));
      table.AddRow(std::move(row));
      WorkloadCache::Instance().Clear();
    }
    Emit(table, cfg);
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper Fig. 5): corr — all fast, PSkyline best at low "
      "d; indep/anti — Hybrid fastest everywhere, PSkyline slowest, gap "
      "grows with d.\n");
}

}  // namespace
}  // namespace sky

int main(int argc, char** argv) {
  sky::Run(sky::BenchConfig::Parse(argc, argv));
  return 0;
}
