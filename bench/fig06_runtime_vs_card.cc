// Copyright (c) SkyBench-NG contributors.
// Reproduces paper Fig. 6: run-time of the five headline algorithms as a
// function of cardinality n, per distribution (d fixed).
//
// Paper shape to reproduce: Hybrid fastest on independent/anticorrelated
// data at every n (2-7x over PBSkyTree); relative gaps roughly constant
// in n except PBSkyTree, which improves with n (larger partitions).
#include <cstdio>

#include "bench_util.h"

namespace sky {
namespace {

void Run(const BenchConfig& cfg) {
  const int d = cfg.d_override ? cfg.d_override : (cfg.full ? 12 : 8);
  const int t = cfg.max_threads > 0 ? cfg.max_threads : (cfg.full ? 16 : 4);
  const std::vector<size_t> ns =
      cfg.full ? std::vector<size_t>{500'000, 1'000'000, 2'000'000,
                                     4'000'000, 8'000'000}
               : std::vector<size_t>{12'500, 25'000, 50'000, 100'000};

  for (const Distribution dist : AllDistributions()) {
    std::printf("== Fig. 6: run-time (sec) vs n — %s (d=%d, t=%d) ==\n",
                DistributionName(dist), d, t);
    Table table({"n", "BSkyTree", "Hybrid", "PBSkyTree", "Q-Flow",
                 "PSkyline", "|sky|"});
    for (const size_t n : ns) {
      WorkloadSpec spec{dist, n, d, cfg.seed};
      const Dataset& data = WorkloadCache::Instance().Get(spec);
      std::vector<std::string> row{Table::Int(n)};
      uint64_t sky_size = 0;
      for (const HeadlineAlgo& ha : HeadlineAlgos()) {
        const RunStats st =
            TimeAlgo(data, ha.algo, ha.parallel ? t : 1, cfg);
        row.push_back(Table::Num(st.total_seconds));
        sky_size = st.skyline_size;
      }
      row.push_back(Table::Int(sky_size));
      table.AddRow(std::move(row));
      WorkloadCache::Instance().Clear();
    }
    Emit(table, cfg);
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper Fig. 6): Hybrid fastest on indep/anti at all "
      "n; all correlated runs cheap; PBSkyTree's relative position improves "
      "with n.\n");
}

}  // namespace
}  // namespace sky

int main(int argc, char** argv) {
  sky::Run(sky::BenchConfig::Parse(argc, argv));
  return 0;
}
