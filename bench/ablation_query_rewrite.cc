// Copyright (c) SkyBench-NG contributors.
// Query-rewrite ablation: what does the engine's view materialization cost
// on top of the raw algorithm? Four query shapes per distribution:
//   direct    — ComputeSkyline on the raw dataset (no query layer)
//   identity  — RunQuery with the default spec (engine fast path, no view)
//   flip      — every dimension MAX (full copy + negate, same skyline size)
//   subspace  — half the dimensions projected away + a box constraint
// The "flip" row is the honest overhead number: identical work for the
// algorithm, plus one full view materialization.
#include <cstdio>

#include "bench_util.h"
#include "query/engine.h"
#include "query/view.h"

namespace sky {
namespace {

double MedianQuerySeconds(const Dataset& data, const QuerySpec& spec,
                          const Options& opts, int repeats) {
  std::vector<double> times;
  for (int rep = 0; rep < repeats; ++rep) {
    times.push_back(RunQuery(data, spec, opts).stats.total_seconds);
  }
  return Median(std::move(times));
}

void Run(const BenchConfig& cfg) {
  const size_t n = cfg.n_override ? cfg.n_override
                                  : (cfg.full ? 1'000'000 : 50'000);
  const int d = cfg.d_override ? cfg.d_override : 8;
  const int t = cfg.max_threads > 0 ? cfg.max_threads : (cfg.full ? 16 : 4);

  std::printf(
      "== Ablation: query-rewrite overhead, Hybrid (n=%zu, d=%d, t=%d) ==\n",
      n, d, t);
  Options opts;
  opts.algorithm = Algorithm::kHybrid;
  opts.threads = t;

  QuerySpec identity;
  QuerySpec flip;
  for (int j = 0; j < d; ++j) flip.SetPreference(j, Preference::kMax);
  QuerySpec subspace;
  std::vector<int> keep;
  for (int j = 0; j < d / 2; ++j) keep.push_back(j);
  subspace.Project(keep, d).Constrain(0, 0.1f, 0.9f);

  Table table({"distribution", "direct (s)", "identity (s)", "flip (s)",
               "flip mat (s)", "subspace (s)"});
  for (const Distribution dist : AllDistributions()) {
    WorkloadSpec wspec{dist, n, d, cfg.seed};
    const Dataset& data = WorkloadCache::Instance().Get(wspec);

    const double direct =
        RunTimed(data, opts, cfg.repeats, cfg.verify).stats.total_seconds;
    const double ident = MedianQuerySeconds(data, identity, opts, cfg.repeats);
    const double flipped = MedianQuerySeconds(data, flip, opts, cfg.repeats);
    // Materialization alone, measured directly on the canonical flip spec.
    const QueryView view =
        MaterializeView(data, flip.Canonicalize(data.dims()));
    const double sub = MedianQuerySeconds(data, subspace, opts, cfg.repeats);

    table.AddRow({DistributionName(dist), Table::Num(direct),
                  Table::Num(ident), Table::Num(flipped),
                  Table::Num(view.materialize_seconds), Table::Num(sub)});
    WorkloadCache::Instance().Clear();
  }
  Emit(table, cfg);
  std::printf(
      "\nExpected shape: identity tracks direct (the engine skips the view "
      "for the native question); flip pays one row copy over direct — small "
      "next to the skyline computation itself on hard inputs; subspace is "
      "dominated by the smaller projected problem, not the rewrite.\n");
}

}  // namespace
}  // namespace sky

int main(int argc, char** argv) {
  sky::Run(sky::BenchConfig::Parse(argc, argv));
  return 0;
}
