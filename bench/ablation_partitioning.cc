// Copyright (c) SkyBench-NG contributors.
// Extension ablation: partitioning scheme inside the divide-and-conquer
// paradigm — PSkyline's linear cut versus APSkyline's angle-based cut
// (paper §III). Angle partitioning groups points of similar direction so
// local skylines are smaller and the merge cheaper; the paper notes it
// "does not scale with dimensionality". Both remain far behind the
// global-skyline paradigm (Hybrid, shown for reference).
#include <cstdio>

#include "bench_util.h"

namespace sky {
namespace {

void Run(const BenchConfig& cfg) {
  const size_t n = cfg.n_override ? cfg.n_override
                                  : (cfg.full ? 1'000'000 : 30'000);
  const int t = cfg.max_threads > 0 ? cfg.max_threads : (cfg.full ? 16 : 4);
  const std::vector<int> ds =
      cfg.d_override ? std::vector<int>{cfg.d_override}
                     : std::vector<int>{3, 5, 8, 12};

  for (const Distribution dist : AllDistributions()) {
    std::printf(
        "== Ablation: linear vs angular D&C partitioning — %s (n=%zu, "
        "t=%d), seconds ==\n",
        DistributionName(dist), n, t);
    Table table({"d", "PSkyline (linear)", "APSkyline (angle)",
                 "Hybrid (global)", "merge share PS", "merge share AP"});
    for (const int d : ds) {
      WorkloadSpec spec{dist, n, d, cfg.seed};
      const Dataset& data = WorkloadCache::Instance().Get(spec);
      const RunStats ps = TimeAlgo(data, Algorithm::kPSkyline, t, cfg);
      const RunStats ap = TimeAlgo(data, Algorithm::kAPSkyline, t, cfg);
      const RunStats hy = TimeAlgo(data, Algorithm::kHybrid, t, cfg);
      const auto share = [](const RunStats& st) {
        return st.total_seconds > 0
                   ? 100.0 * st.phase2_seconds / st.total_seconds
                   : 0.0;
      };
      table.AddRow({Table::Int(static_cast<uint64_t>(d)),
                    Table::Num(ps.total_seconds), Table::Num(ap.total_seconds),
                    Table::Num(hy.total_seconds),
                    Table::Num(share(ps), 1) + "%",
                    Table::Num(share(ap), 1) + "%"});
      WorkloadCache::Instance().Clear();
    }
    Emit(table, cfg);
    std::printf("\n");
  }
  std::printf(
      "Expected shape ([16] + paper §III): angle partitioning beats the "
      "linear cut at low d (smaller local skylines, cheaper merge) but the "
      "advantage fades as d grows; the global-skyline paradigm (Hybrid) "
      "dominates both.\n");
}

}  // namespace
}  // namespace sky

int main(int argc, char** argv) {
  sky::Run(sky::BenchConfig::Parse(argc, argv));
  return 0;
}
