// Copyright (c) SkyBench-NG contributors.
// Executor ablation: what does the shared work-stealing scheduler buy a
// serving workload? A concurrent-clients x shards grid over the same
// sharded dataset, each cell served two ways that differ only in who
// provides the cross-shard parallelism:
//   pooled   — the seed's behaviour: every query constructs a private
//              ThreadPool (spawn + join per request), so C in-flight
//              clients stand up C x threads OS threads;
//   executor — the engine's behaviour since the shared scheduler landed:
//              queries submit capped task groups to one persistent
//              work-stealing executor sized to the hardware.
// Each client runs a fixed script of distinct ~1%-selectivity boxes
// (plans and computes every time; no result cache in this path), and the
// cell reports aggregate queries/second. The expected shape: the arms
// tie at one client and low shard counts, and the pooled arm falls away
// as clients multiply — per-query spawn/join overhead plus thread
// oversubscription, which the shared executor's admission caps avoid.
#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "parallel/executor.h"
#include "parallel/thread_pool.h"
#include "query/engine.h"
#include "query/shard_map.h"

namespace sky {
namespace {

constexpr float kBoxWidth = 0.01f;  // ~1% selectivity on a uniform dim

/// One grid cell: `clients` concurrent threads each run `queries_each`
/// constrained sharded queries against `map`, asking for `threads`-wide
/// cross-shard parallelism from either a per-query pool (executor ==
/// nullptr) or the shared scheduler. Returns aggregate queries/second
/// (median of repeats).
double CellQps(const ShardMap& map, int clients, int threads,
               Executor* executor, int queries_each, int repeats) {
  std::vector<double> qps;
  for (int rep = 0; rep < std::max(repeats, 3); ++rep) {
    ThreadPool client_pool(clients);
    WallTimer timer;
    client_pool.RunOnAll([&](int client) {
      Options opts;
      opts.threads = threads;
      opts.executor = executor;
      for (int q = 0; q < queries_each; ++q) {
        QuerySpec spec;
        const float lo =
            0.05f + 0.01f * static_cast<float>((client * 31 + q + rep) % 80);
        spec.Constrain(0, lo, lo + kBoxWidth);
        RunShardedQuery(map, spec, opts);
      }
    });
    const double secs = std::max(timer.Seconds(), 1e-12);
    qps.push_back(static_cast<double>(clients) *
                  static_cast<double>(queries_each) / secs);
  }
  return Median(std::move(qps));
}

void Run(const BenchConfig& cfg) {
  const size_t n =
      cfg.n_override ? cfg.n_override : (cfg.full ? 1'000'000 : 100'000);
  const int d = cfg.d_override ? cfg.d_override : 8;
  const int queries_each = cfg.full ? 32 : 8;
  std::printf(
      "== Ablation: shared work-stealing executor (anti, n=%zu, d=%d, "
      "%d queries/client, executor width %d) ==\n",
      n, d, queries_each, Executor::DefaultThreads());

  WorkloadSpec wspec{Distribution::kAnticorrelated, n, d, cfg.seed};
  const Dataset& data = WorkloadCache::Instance().Get(wspec);
  Executor exec(Executor::DefaultThreads());

  Table grid({"shards", "clients", "pooled (q/s)", "executor (q/s)",
              "speedup"});
  for (const size_t shards : {size_t{4}, size_t{8}}) {
    const ShardMap map = ShardMap::Build(data, shards,
                                         ShardPolicy::kMedianPivot, cfg.seed);
    // Each query asks for cross-shard parallelism up to the shard count —
    // the request a serving client would make; the executor arm treats it
    // as a cap, the pooled arm as a thread count to spawn.
    const int threads = static_cast<int>(shards);
    for (const int clients : {1, 2, 4, 8}) {
      const double pooled =
          CellQps(map, clients, threads, nullptr, queries_each, cfg.repeats);
      const double shared =
          CellQps(map, clients, threads, &exec, queries_each, cfg.repeats);
      char speedup[32];
      std::snprintf(speedup, sizeof(speedup), "%.2fx", shared / pooled);
      grid.AddRow({std::to_string(shards), std::to_string(clients),
                   Table::Num(pooled), Table::Num(shared), speedup});
    }
  }
  std::printf("\n-- sharded serving throughput, per-query pool vs shared "
              "executor --\n");
  Emit(grid, cfg);
  std::printf(
      "\nExpected shape: parity at 1 client on a wide machine, with the "
      "pooled arm falling behind as clients stack up — each request pays "
      "thread spawn/join and the C x threads oversubscription the shared "
      "executor's admission caps avoid.\n");
}

}  // namespace
}  // namespace sky

int main(int argc, char** argv) {
  sky::Run(sky::BenchConfig::Parse(argc, argv));
  return 0;
}
