# Shared compile/link flags for the whole tree, carried by the
# `skybench_flags` interface target that every subdirectory links.

add_library(skybench_flags INTERFACE)

if(SKYBENCH_ASAN AND SKYBENCH_TSAN)
  message(FATAL_ERROR "SKYBENCH_ASAN and SKYBENCH_TSAN are mutually exclusive")
endif()

if(SKYBENCH_ASAN)
  target_compile_options(skybench_flags INTERFACE
    -fsanitize=address,undefined -fno-omit-frame-pointer)
  target_link_options(skybench_flags INTERFACE
    -fsanitize=address,undefined)
endif()

if(SKYBENCH_TSAN)
  target_compile_options(skybench_flags INTERFACE
    -fsanitize=thread -fno-omit-frame-pointer)
  target_link_options(skybench_flags INTERFACE -fsanitize=thread)
endif()

include(CheckCXXCompilerFlag)
if(SKYBENCH_NATIVE)
  check_cxx_compiler_flag(-march=native SKYBENCH_HAS_MARCH_NATIVE)
  if(SKYBENCH_HAS_MARCH_NATIVE)
    target_compile_options(skybench_flags INTERFACE -march=native)
  else()
    message(WARNING "SKYBENCH_NATIVE requested but -march=native unsupported")
  endif()
endif()

if(SKYBENCH_IPO)
  include(CheckIPOSupported)
  check_ipo_supported(RESULT SKYBENCH_IPO_OK OUTPUT SKYBENCH_IPO_MSG)
  if(SKYBENCH_IPO_OK)
    set(CMAKE_INTERPROCEDURAL_OPTIMIZATION TRUE)
  else()
    message(WARNING "IPO not supported: ${SKYBENCH_IPO_MSG}")
  endif()
endif()

if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
  target_compile_options(skybench_flags INTERFACE -Wall -Wextra)
endif()
