// Copyright (c) SkyBench-NG contributors.
// Multi-criteria decision making (the paper's motivating use case): find
// all hotels offering an optimal trade-off of price, distance to the
// beach, noise level and (inverted) guest rating. A hotel is worth
// considering iff no other hotel is at least as good on every criterion
// and strictly better on one — i.e. iff it is in the skyline.
//
//   $ ./hotel_finder
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/skyline.h"

namespace {

struct Hotel {
  std::string name;
  float price_eur;      // smaller is better
  float beach_km;       // smaller is better
  float noise_db;       // smaller is better
  float rating;         // LARGER is better -> negate before loading
};

std::vector<Hotel> MakeCatalogue(size_t n) {
  std::vector<Hotel> hotels;
  hotels.reserve(n);
  sky::Rng rng(2026);
  for (size_t i = 0; i < n; ++i) {
    Hotel h;
    h.name = "hotel-" + std::to_string(i);
    // Realistic anti-correlation: beach-front hotels cost more.
    h.beach_km = 0.05f + 12.0f * rng.NextFloat();
    h.price_eur = 40.0f + 300.0f / (0.3f + h.beach_km) +
                  60.0f * rng.NextFloat();
    h.noise_db = 30.0f + 40.0f * rng.NextFloat();
    h.rating = 5.0f + 5.0f * rng.NextFloat();
    hotels.push_back(std::move(h));
  }
  return hotels;
}

}  // namespace

int main() {
  const std::vector<Hotel> hotels = MakeCatalogue(50'000);

  // Load into a Dataset. All dimensions must prefer smaller values, so
  // the rating is negated (paper footnote 1).
  std::vector<float> flat;
  flat.reserve(hotels.size() * 4);
  for (const Hotel& h : hotels) {
    flat.push_back(h.price_eur);
    flat.push_back(h.beach_km);
    flat.push_back(h.noise_db);
    flat.push_back(-h.rating);
  }
  const sky::Dataset data = sky::Dataset::FromRowMajor(4, flat);

  sky::Options opts;
  opts.algorithm = sky::Algorithm::kHybrid;
  opts.threads = 4;
  const sky::Result result = sky::ComputeSkyline(data, opts);

  std::printf("%zu of %zu hotels offer an optimal trade-off:\n\n",
              result.skyline.size(), hotels.size());

  // Show the ten cheapest skyline hotels.
  std::vector<sky::PointId> by_price(result.skyline);
  std::sort(by_price.begin(), by_price.end(),
            [&](sky::PointId a, sky::PointId b) {
              return hotels[a].price_eur < hotels[b].price_eur;
            });
  std::printf("%-12s %9s %9s %9s %7s\n", "name", "price", "beach km",
              "noise dB", "rating");
  for (size_t i = 0; i < std::min<size_t>(10, by_price.size()); ++i) {
    const Hotel& h = hotels[by_price[i]];
    std::printf("%-12s %9.0f %9.2f %9.1f %7.1f\n", h.name.c_str(),
                h.price_eur, h.beach_km, h.noise_db, h.rating);
  }
  std::printf(
      "\nEvery listed hotel is undominated: anything cheaper is farther "
      "from the beach, noisier, or rated worse.\n");
  return 0;
}
