// Copyright (c) SkyBench-NG contributors.
// Quickstart: generate a synthetic dataset, compute its skyline with the
// paper's Hybrid algorithm, and inspect the run statistics.
//
//   $ ./quickstart
#include <cstdio>

#include "core/skyline.h"
#include "data/generator.h"

int main() {
  // 100k points over 8 anticorrelated dimensions — a challenging workload
  // with a large skyline (smaller values are better on every dimension).
  const sky::Dataset data = sky::GenerateSynthetic(
      sky::Distribution::kAnticorrelated, 100'000, 8, /*seed=*/42);

  sky::Options opts;
  opts.algorithm = sky::Algorithm::kHybrid;  // the paper's contribution
  opts.threads = 4;                          // 0 = all hardware threads
  opts.count_dts = true;                     // collect work counters

  const sky::Result result = sky::ComputeSkyline(data, opts);

  std::printf("input points     : %zu\n", data.count());
  std::printf("skyline points   : %zu (%.1f%%)\n", result.skyline.size(),
              100.0 * result.skyline.size() / data.count());
  std::printf("wall time        : %.3f s\n", result.stats.total_seconds);
  std::printf("dominance tests  : %llu\n",
              static_cast<unsigned long long>(result.stats.dominance_tests));
  std::printf("mask-filter skips: %llu\n",
              static_cast<unsigned long long>(result.stats.mask_filter_hits));

  // Result entries are row indices into `data`:
  std::printf("first skyline point: row %u = (", result.skyline.front());
  for (int j = 0; j < data.dims(); ++j) {
    std::printf("%s%.3f", j ? ", " : "", data.Row(result.skyline.front())[j]);
  }
  std::printf(")\n");
  return 0;
}
