// Copyright (c) SkyBench-NG contributors.
// Online skyline maintenance: keep the Pareto set of a live marketplace
// feed (price vs delivery time vs defect rate) up to date as offers
// arrive one at a time — the streaming complement to the batch
// algorithms (see src/core/streaming.h). Part two replays the feed
// through the serving layer's point-delta path: inserts route to their
// shard and repair only that shard's skyline; deletes re-promote the
// offers the removed ones had been hiding.
//
//   $ ./streaming_feed
#include <cstdio>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/streaming.h"
#include "query/engine.h"

int main() {
  sky::StreamingSkyline live(3);
  sky::Rng rng(31337);

  size_t accepted = 0;
  constexpr size_t kOffers = 500'000;
  std::vector<float> all_offers;
  all_offers.reserve(kOffers * 3);
  for (size_t i = 0; i < kOffers; ++i) {
    // Offers improve slowly over time (sellers undercut each other).
    const float drift = 1.0f - 0.3f * static_cast<float>(i) / kOffers;
    const float price = drift * (10.0f + 90.0f * rng.NextFloat());
    const float days = 1.0f + 13.0f * rng.NextFloat();
    const float defects = 0.001f + 0.05f * rng.NextFloat();
    all_offers.insert(all_offers.end(), {price, days, defects});
    accepted += live.Insert(std::vector<sky::Value>{price, days, defects},
                            static_cast<sky::PointId>(i));

    if ((i + 1) % 100'000 == 0) {
      std::printf("after %7zu offers: %4zu on the Pareto frontier "
                  "(%.2f%% of arrivals entered it at some point)\n",
                  i + 1, live.size(), 100.0 * accepted / (i + 1));
    }
  }

  std::printf("\ntotal offers     : %llu\n",
              static_cast<unsigned long long>(live.inserted()));
  std::printf("frontier size    : %zu\n", live.size());
  std::printf("dominance tests  : %llu (%.1f per offer)\n",
              static_cast<unsigned long long>(live.dominance_tests()),
              static_cast<double>(live.dominance_tests()) / kOffers);

  const auto rows = live.Rows();
  const auto ids = live.Ids();
  std::printf("\nsample frontier offers:\n");
  for (size_t k = 0; k < std::min<size_t>(5, ids.size()); ++k) {
    std::printf("  offer %7u: %.2f EUR, %.1f days, %.3f defect rate\n",
                ids[k], rows[k * 3], rows[k * 3 + 1], rows[k * 3 + 2]);
  }

  // ---- Serving the feed: point deltas on a registered dataset ----
  // The marketplace also answers ad-hoc skyline queries, so the
  // snapshot lives in a sharded SkylineEngine. Offer churn does not
  // re-register 500k rows: InsertPoints / DeletePoints repair only the
  // touched shards' maintained skylines and invalidate only the cached
  // results whose constraint box the delta can reach.
  sky::SkylineEngine::Config cfg;
  cfg.shards = 4;
  cfg.shard_policy = sky::ShardPolicy::kMedianPivot;
  sky::SkylineEngine engine(cfg);
  engine.RegisterDataset("offers", sky::Dataset::FromRowMajor(3, all_offers));

  const sky::QueryResult before = engine.Execute("offers", sky::QuerySpec{});
  std::printf("\nserved frontier  : %zu offers across 4 shards\n",
              before.ids.size());

  // Three aggressive new offers arrive in one batch...
  sky::Dataset batch = sky::Dataset::FromRowMajor(
      3, {7.50f, 2.0f, 0.004f, 9.90f, 1.5f, 0.020f, 6.00f, 6.0f, 0.002f});
  engine.InsertPoints("offers", batch);
  // ...and the cheapest two incumbent frontier offers are retracted.
  // Deleting a skyline member re-promotes whatever it alone dominated.
  const std::vector<sky::PointId> retracted{before.ids[0], before.ids[1]};
  engine.DeletePoints("offers", retracted);

  const sky::QueryResult after = engine.Execute("offers", sky::QuerySpec{});
  std::printf("after churn      : %zu offers on the frontier (delta v%llu, "
              "%zu rows total)\n",
              after.ids.size(),
              static_cast<unsigned long long>(engine.MinorVersion("offers")),
              engine.Find("offers")->count());
  return 0;
}
