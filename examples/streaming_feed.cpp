// Copyright (c) SkyBench-NG contributors.
// Online skyline maintenance: keep the Pareto set of a live marketplace
// feed (price vs delivery time vs defect rate) up to date as offers
// arrive one at a time — the streaming complement to the batch
// algorithms (see src/core/streaming.h).
//
//   $ ./streaming_feed
#include <cstdio>
#include <vector>

#include "common/random.h"
#include "core/streaming.h"

int main() {
  sky::StreamingSkyline live(3);
  sky::Rng rng(31337);

  size_t accepted = 0;
  constexpr size_t kOffers = 500'000;
  for (size_t i = 0; i < kOffers; ++i) {
    // Offers improve slowly over time (sellers undercut each other).
    const float drift = 1.0f - 0.3f * static_cast<float>(i) / kOffers;
    const float price = drift * (10.0f + 90.0f * rng.NextFloat());
    const float days = 1.0f + 13.0f * rng.NextFloat();
    const float defects = 0.001f + 0.05f * rng.NextFloat();
    accepted += live.Insert(std::vector<sky::Value>{price, days, defects},
                            static_cast<sky::PointId>(i));

    if ((i + 1) % 100'000 == 0) {
      std::printf("after %7zu offers: %4zu on the Pareto frontier "
                  "(%.2f%% of arrivals entered it at some point)\n",
                  i + 1, live.size(), 100.0 * accepted / (i + 1));
    }
  }

  std::printf("\ntotal offers     : %llu\n",
              static_cast<unsigned long long>(live.inserted()));
  std::printf("frontier size    : %zu\n", live.size());
  std::printf("dominance tests  : %llu (%.1f per offer)\n",
              static_cast<unsigned long long>(live.dominance_tests()),
              static_cast<double>(live.dominance_tests()) / kOffers);

  const auto rows = live.Rows();
  const auto ids = live.Ids();
  std::printf("\nsample frontier offers:\n");
  for (size_t k = 0; k < std::min<size_t>(5, ids.size()); ++k) {
    std::printf("  offer %7u: %.2f EUR, %.1f days, %.3f defect rate\n",
                ids[k], rows[k * 3], rows[k * 3 + 1], rows[k * 3 + 2]);
  }
  return 0;
}
