// Copyright (c) SkyBench-NG contributors.
// Query service: a long-lived SkylineEngine serving mixed preference /
// projection / constraint / k-band queries over registered datasets from
// many threads at once — the shape of a real skyline backend, as opposed
// to the one-shot ComputeSkyline call of the quickstart. Service health
// is read from the engine's metrics registry (obs/metrics.h): per-round
// snapshots report throughput, cache hit rates and latency quantiles,
// and the final snapshot can be written out as JSON for scraping.
//
//   $ ./query_service [n_points] [n_threads] [rounds] [shards] [stats.json]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <vector>

#include "common/timer.h"
#include "data/generator.h"
#include "data/realistic.h"
#include "obs/export.h"
#include "parallel/thread_pool.h"
#include "query/engine.h"

namespace {

/// The mixed query workload: every worker cycles through these against the
/// two registered datasets. Repetitions across workers are intentional —
/// they exercise the result cache exactly like repeated user traffic.
std::vector<std::pair<const char*, sky::QuerySpec>> BuildWorkload() {
  using sky::Preference;
  std::vector<std::pair<const char*, sky::QuerySpec>> queries;

  // "hotels" is house-like data: d=0 price, d=1..: quality-ish columns.
  sky::QuerySpec cheap_best;
  cheap_best.SetPreference(1, Preference::kMax)
      .SetPreference(2, Preference::kMax);
  queries.emplace_back("hotels", cheap_best);

  sky::QuerySpec budget_band = cheap_best;
  budget_band.Constrain(0, 0.0f, 0.35f);  // price cap
  budget_band.band_k = 3;                 // top-3 alternatives per trade-off
  queries.emplace_back("hotels", budget_band);

  sky::QuerySpec two_dims;
  two_dims.Project({0, 3}, 6);
  queries.emplace_back("hotels", two_dims);

  sky::QuerySpec shortlist;
  shortlist.SetPreference(1, Preference::kMax);
  shortlist.top_k = 10;
  queries.emplace_back("hotels", shortlist);

  // "flights" is anticorrelated synthetic data: all-min full skyline plus
  // a constrained subspace variant.
  queries.emplace_back("flights", sky::QuerySpec{});

  sky::QuerySpec window;
  window.Project({0, 1, 2}, 6).Constrain(0, 0.2f, 0.8f);
  queries.emplace_back("flights", window);

  return queries;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t n = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 50'000;
  const int threads = argc > 2 ? std::atoi(argv[2]) : 8;
  const int rounds = argc > 3 ? std::atoi(argv[3]) : 4;
  const size_t shards = argc > 4 ? static_cast<size_t>(std::atoll(argv[4])) : 4;
  const std::string stats_json = argc > 5 ? argv[5] : "";

  // Datasets are sharded at registration: constrained queries plan
  // against per-shard bounding boxes and skip shards outside the box,
  // everything else fans out and merges with M(S). Median-pivot
  // assignment keeps hotel shards spatially tight (prunable); the flights
  // registration exercises the round-robin policy. auto_algorithm lets
  // the cost model pick the algorithm per query and per shard from the
  // registration-time sketches; the caches carry a byte budget (views)
  // and a TTL (results) like a long-lived deployment would.
  sky::SkylineEngine::Config config;
  config.result_cache_capacity = 64;
  config.result_cache_ttl = 300.0;          // refresh-heavy service: 5 min
  config.view_cache_bytes = size_t{64} << 20;  // 64 MiB of hot views
  config.shards = shards;
  config.shard_policy = sky::ShardPolicy::kMedianPivot;
  config.auto_algorithm = true;
  sky::SkylineEngine engine(config);
  engine.RegisterDataset("hotels", sky::GenerateHouseLike(n, /*seed=*/7));
  engine.RegisterDataset(
      "flights",
      sky::GenerateSynthetic(sky::Distribution::kAnticorrelated, n, 6,
                             /*seed=*/42),
      shards, sky::ShardPolicy::kRoundRobin);
  std::printf("registered datasets (shards=%zu):", shards);
  for (const std::string& name : engine.DatasetNames()) {
    std::printf(" %s(n=%zu)", name.c_str(), engine.Find(name)->count());
  }
  std::printf("\n");

  const auto workload = BuildWorkload();
  std::atomic<size_t> returned_points{0};
  std::atomic<size_t> shards_pruned{0};
  std::atomic<size_t> query_errors{0};

  // Every pool worker is an independent "frontend thread" hammering the
  // shared engine with the mixed workload, offset so distinct queries are
  // in flight at the same time. After each round the engine's metrics
  // registry is snapshotted for a health line — exactly what a periodic
  // scraper would read off a deployment.
  sky::WallTimer wall;
  sky::ThreadPool pool(threads);
  for (int round = 0; round < rounds; ++round) {
    pool.RunOnAll([&](int worker) {
      sky::Options opts;
      opts.threads = 1;  // per-query parallelism off: parallel across queries
      for (size_t q = 0; q < workload.size(); ++q) {
        const auto& [name, spec] =
            workload[(q + static_cast<size_t>(worker)) % workload.size()];
        // A failed query must never take the service down: runtime
        // outcomes come back as QueryResult::status, and anything the
        // engine still throws (it shouldn't, for a registered dataset
        // and valid spec) is logged and counted, not propagated.
        try {
          const sky::QueryResult r = engine.Execute(name, spec, opts);
          if (r.status != sky::Status::kOk) {
            query_errors.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          returned_points.fetch_add(r.ids.size(), std::memory_order_relaxed);
          shards_pruned.fetch_add(r.shards_pruned,
                                  std::memory_order_relaxed);
        } catch (const std::exception& e) {
          query_errors.fetch_add(1, std::memory_order_relaxed);
          std::fprintf(stderr, "query %s failed: %s\n", name, e.what());
        }
      }
    });
    const sky::obs::MetricsSnapshot snap = engine.Metrics().Snapshot();
    const sky::obs::MetricValue* latency =
        snap.Find("sky_query_latency_seconds");
    std::printf(
        "round %d: served=%.0f hits=%.0f misses=%.0f errors=%zu p50=%.0fus "
        "p99=%.0fus\n",
        round + 1, snap.Value("sky_engine_queries_total"),
        snap.Value("sky_result_cache_hits_total"),
        snap.Value("sky_result_cache_misses_total"), query_errors.load(),
        latency != nullptr ? latency->histogram.Quantile(0.5) * 1e6 : 0.0,
        latency != nullptr ? latency->histogram.Quantile(0.99) * 1e6 : 0.0);
  }
  const double seconds = wall.Seconds();

  const sky::obs::MetricsSnapshot snap = engine.Metrics().Snapshot();
  const double served = snap.Value("sky_engine_queries_total");
  std::printf("served %.0f queries from %d threads in %.3f s (%.0f q/s)\n",
              served, threads, seconds, served / seconds);
  std::printf("returned points : %zu\n", returned_points.load());
  std::printf("result cache    : %.0f hits / %.0f misses (%.0f entries)\n",
              snap.Value("sky_result_cache_hits_total"),
              snap.Value("sky_result_cache_misses_total"),
              snap.Value("sky_result_cache_entries"));
  std::printf("shards pruned   : %zu (constraint boxes missed the shard)\n",
              shards_pruned.load());
  std::printf("query errors    : %zu (logged, service kept serving)\n",
              query_errors.load());
  // The cost model's per-shard decisions, read from the registry's
  // sky_engine_algorithm_total{algo=...} family instead of a hand-rolled
  // tally: the engine counts one bump per executed shard.
  std::printf("auto decisions  :");
  for (const sky::obs::MetricValue& m : snap.metrics) {
    if (m.name != "sky_engine_algorithm_total" || m.value == 0.0) continue;
    for (const auto& [key, label] : m.labels) {
      if (key == "algo") std::printf(" %s=%.0f", label.c_str(), m.value);
    }
  }
  std::printf("\n");

  // A dataset refresh: re-registering bumps the version, so the very next
  // identical query recomputes against the new data instead of the cache.
  engine.RegisterDataset(
      "flights", sky::GenerateSynthetic(sky::Distribution::kAnticorrelated, n,
                                        6, /*seed=*/43));
  const sky::QueryResult after = engine.Execute("flights", sky::QuerySpec{});
  std::printf("after refresh   : |sky(flights)|=%zu cache_hit=%s\n",
              after.ids.size(), after.cache_hit ? "true" : "false");

  if (!stats_json.empty()) {
    sky::obs::WriteTextFile(stats_json,
                            sky::obs::RenderJson(engine.Metrics().Snapshot()));
    std::printf("wrote metrics snapshot to %s\n", stats_json.c_str());
  }
  return 0;
}
