// Copyright (c) SkyBench-NG contributors.
// QoS-based web service selection (paper §I cites skyline services for
// web service composition): prune a service registry to its QoS skyline
// before running an (expensive) composition search, and compare how much
// work each algorithm spends doing it — reproducing, in miniature, the
// paper's observation that dominance-test counts explain performance.
//
//   $ ./web_service_qos
#include <cstdio>
#include <vector>

#include "common/random.h"
#include "core/skyline.h"

namespace {

/// Services with five QoS attributes: latency, cost-per-call, error
/// rate, CO2 footprint and (negated) throughput.
sky::Dataset MakeRegistry(size_t n) {
  std::vector<float> flat;
  flat.reserve(n * 5);
  sky::Rng rng(99);
  for (size_t i = 0; i < n; ++i) {
    const float tier = rng.NextFloat();  // premium services: fast but $$$
    const float latency_ms = 5.0f + 400.0f * (1.0f - tier) * rng.NextFloat();
    const float cost = 0.01f + 0.50f * tier + 0.05f * rng.NextFloat();
    const float error_rate = 0.001f + 0.05f * rng.NextFloat();
    const float co2_g = 0.1f + 2.0f * rng.NextFloat();
    const float throughput = 50.0f + 950.0f * tier * rng.NextFloat();
    flat.insert(flat.end(),
                {latency_ms, cost, error_rate, co2_g, -throughput});
  }
  return sky::Dataset::FromRowMajor(5, flat);
}

}  // namespace

int main() {
  const sky::Dataset registry = MakeRegistry(100'000);

  std::printf("registry: %zu services, 5 QoS attributes\n\n",
              registry.count());
  std::printf("%-10s %10s %14s %14s %8s\n", "algorithm", "time (s)",
              "dom. tests", "mask skips", "|sky|");

  for (const sky::Algorithm algo :
       {sky::Algorithm::kPSkyline, sky::Algorithm::kQFlow,
        sky::Algorithm::kBSkyTree, sky::Algorithm::kHybrid}) {
    sky::Options opts;
    opts.algorithm = algo;
    opts.threads = 4;
    opts.count_dts = true;
    const sky::Result r = sky::ComputeSkyline(registry, opts);
    std::printf("%-10s %10.4f %14llu %14llu %8zu\n",
                sky::AlgorithmName(algo), r.stats.total_seconds,
                static_cast<unsigned long long>(r.stats.dominance_tests),
                static_cast<unsigned long long>(r.stats.mask_filter_hits),
                r.skyline.size());
  }

  std::printf(
      "\nThe skyline services are the only candidates any weighting of "
      "QoS attributes can ever select; the composition search space "
      "shrinks from the full registry to the skyline.\n");
  return 0;
}
