// Copyright (c) SkyBench-NG contributors.
// Route-skyline planning (paper §I cites route planning for road
// networks): among candidate routes described by fuel, travel time, toll
// cost and elevation gain, stream the Pareto-optimal routes
// *progressively* — the first results are reported while computation is
// still running, one of the key advantages the paper claims over
// divide-and-conquer parallel skylines (no merge phase at the end).
//
//   $ ./route_planning
#include <atomic>
#include <cstdio>
#include <vector>

#include "common/random.h"
#include "core/skyline.h"

namespace {

/// Synthesize candidate routes: routes trade fuel against time (highway
/// vs shortcut) and tolls against both.
sky::Dataset MakeRoutes(size_t n) {
  std::vector<float> flat;
  flat.reserve(n * 4);
  sky::Rng rng(7);
  for (size_t i = 0; i < n; ++i) {
    const float directness = rng.NextFloat();  // 0 = scenic, 1 = highway
    const float fuel_l = 20.0f + 30.0f * directness + 5.0f * rng.NextFloat();
    const float time_h = 6.0f - 3.5f * directness + 1.0f * rng.NextFloat();
    const float toll_eur = 25.0f * directness * rng.NextFloat();
    const float climb_m = 100.0f + 900.0f * rng.NextFloat();
    flat.insert(flat.end(), {fuel_l, time_h, toll_eur, climb_m});
  }
  return sky::Dataset::FromRowMajor(4, flat);
}

}  // namespace

int main() {
  const sky::Dataset routes = MakeRoutes(200'000);

  sky::Options opts;
  opts.algorithm = sky::Algorithm::kHybrid;
  opts.threads = 4;
  opts.alpha = 1024;

  // Progressive reporting: Hybrid confirms skyline membership one
  // α-block at a time; each confirmed batch is final and can be acted on
  // immediately (e.g. shown to the driver).
  std::atomic<size_t> batches{0};
  std::atomic<size_t> streamed{0};
  size_t first_batch = 0;
  opts.progressive = [&](std::span<const sky::PointId> chunk) {
    if (batches == 0) first_batch = chunk.size();
    ++batches;
    streamed += chunk.size();
  };

  const sky::Result result = sky::ComputeSkyline(routes, opts);

  std::printf("candidate routes        : %zu\n", routes.count());
  std::printf("pareto-optimal routes   : %zu\n", result.skyline.size());
  std::printf("progressive batches     : %zu\n", batches.load());
  std::printf("first batch size        : %zu routes available early\n",
              first_batch);
  std::printf("streamed total          : %zu (== final skyline)\n",
              streamed.load());
  std::printf("total wall time         : %.3f s\n",
              result.stats.total_seconds);

  const sky::PointId best = result.skyline.front();
  std::printf("\nexample optimal route %u: %.1f l fuel, %.2f h, %.2f EUR "
              "toll, %.0f m climb\n",
              best, routes.Row(best)[0], routes.Row(best)[1],
              routes.Row(best)[2], routes.Row(best)[3]);
  return 0;
}
